// ArithmeticContext: where the hardware meets the model.
//
// The paper's integration point (§VI.A): "we integrated our tool to the
// Fast Artificial Neural Network Library (FANN) to simulate the behavior
// of our neural network model under undervolting". Our network routes
// every MAC *product* through an ArithmeticContext:
//
//   ExactContext  — nominal voltage, bit-exact products;
//   FaultyContext — undervolted core: products pass through the stochastic
//                   fault injector (the Stochastic-HMD inference path);
//   NoiseContext  — the §VIII comparison baselines: additive Gaussian noise
//                   whose randomness is *queried per MAC* from a TRNG or
//                   PRNG RandomSource, paying that source's per-query cost.
//
// Additions/accumulations stay exact everywhere: §II observed no faults in
// adders under undervolting.
//
// Three granularities:
//
//   mul(a, b)     — one product, the paper's literal per-MAC hook;
//   dot(w, x, n)  — one output row's worth of products, exact-accumulated
//                   (adders never fault, §II). The default implementation
//                   loops mul(), so every context is correct by
//                   construction; the shipped contexts override it with
//                   span-level kernels that preserve the per-product fault
//                   model while skipping the per-MAC virtual dispatch.
//   gemm(...)     — one layer over a windows-major tile of inputs (the
//                   cross-request batched forward). The default loops
//                   dot() row-major, so the per-product order — and hence
//                   any context's randomness consumption — is identical
//                   to running the rows one at a time; overrides may
//                   block for throughput only where no product consumes
//                   randomness (exact spans).
#pragma once

#include <cstdint>

#include "faultsim/fault_injector.hpp"
#include "rng/random_source.hpp"

namespace shmd::nn {

namespace detail {

/// Blocked exact GEMM kernel shared by ExactContext::gemm and the
/// fault-free fast path of FaultyContext::gemm: four windows (rows of x)
/// advance together so each weight load is reused four times. Every
/// (row, output) accumulator still sums its products in ascending index
/// order, so each output is bit-identical to a standalone exact dot of
/// that row — blocking reorders *independent* accumulations only, never
/// the summands within one (and the project never enables -ffast-math,
/// so the compiler cannot either).
inline void exact_gemm(const double* w, const double* bias, const double* x, std::size_t rows,
                       std::size_t in_dim, std::size_t out_dim, double* y) {
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const double* x0 = x + r * in_dim;
    const double* x1 = x0 + in_dim;
    const double* x2 = x1 + in_dim;
    const double* x3 = x2 + in_dim;
    double* yr = y + r * out_dim;
    for (std::size_t o = 0; o < out_dim; ++o) {
      const double* wo = w + o * in_dim;
      double a0 = 0.0;
      double a1 = 0.0;
      double a2 = 0.0;
      double a3 = 0.0;
      for (std::size_t i = 0; i < in_dim; ++i) {
        const double wi = wo[i];
        a0 += wi * x0[i];
        a1 += wi * x1[i];
        a2 += wi * x2[i];
        a3 += wi * x3[i];
      }
      const double b = bias[o];
      yr[o] = b + a0;
      yr[out_dim + o] = b + a1;
      yr[2 * out_dim + o] = b + a2;
      yr[3 * out_dim + o] = b + a3;
    }
  }
  for (; r < rows; ++r) {
    const double* xr = x + r * in_dim;
    double* yr = y + r * out_dim;
    for (std::size_t o = 0; o < out_dim; ++o) {
      const double* wo = w + o * in_dim;
      double acc = 0.0;
      for (std::size_t i = 0; i < in_dim; ++i) acc += wo[i] * xr[i];
      yr[o] = bias[o] + acc;
    }
  }
}

}  // namespace detail

class ArithmeticContext {
 public:
  virtual ~ArithmeticContext() = default;

  /// One multiply: returns the (possibly perturbed) product a*b.
  [[nodiscard]] virtual double mul(double a, double b) = 0;

  /// One dot product of length n: sum of (possibly perturbed) products
  /// w[i]*x[i], accumulated exactly in ascending index order (§II: adders
  /// never fault). The fallback routes every product through mul(), so a
  /// context that only implements mul() keeps bit-identical behavior;
  /// overrides must perturb each product with the same marginal
  /// distribution mul() would.
  [[nodiscard]] virtual double dot(const double* w, const double* x, std::size_t n) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += mul(w[i], x[i]);
    return acc;
  }

  /// One dense layer over a windows-major tile: `rows` input rows of
  /// width in_dim (x[r * in_dim + i]), out_dim weight rows (row-major,
  /// w[o * in_dim + i]), producing y[r * out_dim + o] =
  /// bias[o] + dot(w_o, x_r). The bias joins the exact accumulation, as
  /// in Network::forward. The fallback runs the rows in ascending r and,
  /// within a row, the outputs in ascending o via dot() — the exact
  /// per-product order of the unbatched forward — so a stateful context's
  /// randomness consumption is identical to scoring the rows one at a
  /// time. Overrides must preserve that per-product order wherever a
  /// product consumes randomness; only randomness-free spans may be
  /// reblocked for throughput.
  virtual void gemm(const double* w, const double* bias, const double* x, std::size_t rows,
                    std::size_t in_dim, std::size_t out_dim, double* y) {
    for (std::size_t r = 0; r < rows; ++r) {
      const double* xr = x + r * in_dim;
      double* yr = y + r * out_dim;
      for (std::size_t o = 0; o < out_dim; ++o) yr[o] = bias[o] + dot(w + o * in_dim, xr, in_dim);
    }
  }

  [[nodiscard]] std::uint64_t mac_count() const noexcept { return macs_; }
  void reset_mac_count() noexcept { macs_ = 0; }

  [[nodiscard]] virtual const char* name() const noexcept = 0;

 protected:
  void count_mac() noexcept { ++macs_; }
  /// Span-level MAC accounting for dot() overrides that bypass mul().
  void count_macs(std::uint64_t n) noexcept { macs_ += n; }

 private:
  std::uint64_t macs_ = 0;
};

/// Bit-exact products (nominal voltage).
class ExactContext final : public ArithmeticContext {
 public:
  [[nodiscard]] double mul(double a, double b) override {
    count_mac();
    return a * b;
  }

  /// Plain dot product, free of per-MAC virtual dispatch. Same ascending
  /// accumulation order as the mul() fallback, so results stay
  /// bit-identical (the compiler may not reorder FP sums without
  /// -ffast-math, which this project never enables).
  [[nodiscard]] double dot(const double* w, const double* x, std::size_t n) override {
    count_macs(n);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += w[i] * x[i];
    return acc;
  }

  /// Blocked matrix–matrix kernel: four windows share one traversal of
  /// each weight row (see detail::exact_gemm). Exact products consume no
  /// randomness and every (row, output) accumulator sums in ascending
  /// index order, so results are bit-identical to the dot()-looping
  /// fallback.
  void gemm(const double* w, const double* bias, const double* x, std::size_t rows,
            std::size_t in_dim, std::size_t out_dim, double* y) override {
    count_macs(static_cast<std::uint64_t>(rows) * in_dim * out_dim);
    detail::exact_gemm(w, bias, x, rows, in_dim, out_dim, y);
  }

  [[nodiscard]] const char* name() const noexcept override { return "exact"; }
};

/// Undervolted products: every multiply may suffer a stochastic timing
/// fault per the injector's error rate and bit-location distribution.
class FaultyContext final : public ArithmeticContext {
 public:
  /// Above this error rate the dot() kernel switches from geometric
  /// skip-ahead to per-product Bernoulli draws: the expected gap between
  /// faults drops below ~1/8 of a cache line of products and the log()
  /// in each geometric draw costs more than the Bernoulli compares it
  /// replaces. The paper's operating points (er <= 0.15, Fig. 2a) sit in
  /// the skip-ahead regime.
  static constexpr double kSkipAheadMaxRate = 0.125;

  explicit FaultyContext(faultsim::FaultInjector& injector) : injector_(&injector) {}

  [[nodiscard]] double mul(double a, double b) override {
    count_mac();
    return injector_->corrupt_product(a * b);
  }

  /// Geometric skip-ahead kernel: a Bernoulli(er) fault decision per
  /// product is equivalent to sampling the gap to the next fault site
  /// from Geometric(er), so the products between sampled sites run as an
  /// exact dot product and only the sites themselves pay for bit-flip
  /// corruption. Marginal per-product fault probability, bit-location
  /// distribution, and FaultStats.operations accounting all match the
  /// scalar mul() path (geometric memorylessness makes resampling at span
  /// boundaries sound); only the RNG consumption pattern differs, which
  /// is exactly the moving-target randomness the defense wants fresh per
  /// inference anyway.
  [[nodiscard]] double dot(const double* w, const double* x, std::size_t n) override {
    count_macs(n);
    faultsim::FaultInjector& inj = *injector_;
    if (inj.error_rate() > kSkipAheadMaxRate) {
      // Dense-fault regime: geometric gaps are mostly tiny and a log()
      // per gap costs more than a Bernoulli draw per product, so corrupt
      // per product (still one virtual call per row, not per MAC).
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) acc += inj.corrupt_product(w[i] * x[i]);
      return acc;
    }
    inj.count_operations(n);
    double acc = 0.0;
    std::size_t i = 0;
    while (i < n) {
      const std::size_t gap = inj.next_fault_gap();
      const bool fault_free = gap >= n - i;
      const std::size_t end = fault_free ? n : i + gap;
      // Accumulate the exact span into a local whose live range crosses no
      // call: `acc` itself is live across next_fault_gap(), so compilers
      // keep it spilled — and `span` must stay simultaneously live with
      // `acc` at the += below or regalloc coalesces them back into the
      // stack slot, paying a store/reload per product.
      double span = 0.0;
      for (std::size_t j = i; j < end; ++j) span += w[j] * x[j];
      acc += span;
      if (fault_free) break;
      acc += inj.corrupt_product_at_fault(w[end] * x[end]);
      i = end + 1;
    }
    return acc;
  }

  /// Tiled faulty forward. At the fault-free operating point (er == 0)
  /// no product consumes randomness — next_fault_gap() returns kNoFault
  /// without touching the RNG — so the whole tile runs through the
  /// blocked exact kernel, bit- and RNG-stream-identical to the row-wise
  /// path; only the FaultStats opportunity count need match. Under
  /// faults the stream is live: products must be consumed in the exact
  /// row-major order of the fallback (the per-request fault stream is
  /// anchored to admission order, and each dot() call re-anchors the
  /// geometric gap at its row boundary exactly as the unbatched forward
  /// does), so the tile loops this class's own dot() — resolved
  /// non-virtually, keeping one (devirtualized) call per output row.
  void gemm(const double* w, const double* bias, const double* x, std::size_t rows,
            std::size_t in_dim, std::size_t out_dim, double* y) override {
    faultsim::FaultInjector& inj = *injector_;
    if (inj.error_rate() <= 0.0) {
      const std::uint64_t n = static_cast<std::uint64_t>(rows) * in_dim * out_dim;
      count_macs(n);
      inj.count_operations(n);
      detail::exact_gemm(w, bias, x, rows, in_dim, out_dim, y);
      return;
    }
    for (std::size_t r = 0; r < rows; ++r) {
      const double* xr = x + r * in_dim;
      double* yr = y + r * out_dim;
      for (std::size_t o = 0; o < out_dim; ++o) {
        yr[o] = bias[o] + FaultyContext::dot(w + o * in_dim, xr, in_dim);
      }
    }
  }

  [[nodiscard]] const char* name() const noexcept override { return "undervolt-faulty"; }

  [[nodiscard]] faultsim::FaultInjector& injector() noexcept { return *injector_; }

 private:
  faultsim::FaultInjector* injector_;
};

/// Additive-noise defense baseline: product + sigma * N(0,1), with the
/// Gaussian drawn from an explicit randomness source (TRNG or PRNG). Each
/// MAC costs one gaussian() (two 64-bit queries) — the overhead §VIII
/// quantifies.
class NoiseContext final : public ArithmeticContext {
 public:
  NoiseContext(rng::RandomSource& source, double sigma) : source_(&source), sigma_(sigma) {}

  [[nodiscard]] double mul(double a, double b) override {
    count_mac();
    return a * b + sigma_ * source_->gaussian();
  }

  /// Batched row loop. Still one gaussian() query per product — the
  /// per-query randomness cost is the very overhead §VIII measures, so it
  /// must not be amortized away; only the per-MAC virtual dispatch is.
  [[nodiscard]] double dot(const double* w, const double* x, std::size_t n) override {
    count_macs(n);
    rng::RandomSource& src = *source_;
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += w[i] * x[i] + sigma_ * src.gaussian();
    return acc;
  }

  [[nodiscard]] const char* name() const noexcept override { return "additive-noise"; }

  [[nodiscard]] rng::RandomSource& source() noexcept { return *source_; }
  [[nodiscard]] double sigma() const noexcept { return sigma_; }

 private:
  rng::RandomSource* source_;
  double sigma_;
};

}  // namespace shmd::nn
