// ArithmeticContext: where the hardware meets the model.
//
// The paper's integration point (§VI.A): "we integrated our tool to the
// Fast Artificial Neural Network Library (FANN) to simulate the behavior
// of our neural network model under undervolting". Our network routes
// every MAC *product* through an ArithmeticContext:
//
//   ExactContext  — nominal voltage, bit-exact products;
//   FaultyContext — undervolted core: products pass through the stochastic
//                   fault injector (the Stochastic-HMD inference path);
//   NoiseContext  — the §VIII comparison baselines: additive Gaussian noise
//                   whose randomness is *queried per MAC* from a TRNG or
//                   PRNG RandomSource, paying that source's per-query cost.
//
// Additions/accumulations stay exact everywhere: §II observed no faults in
// adders under undervolting.
//
// Two granularities:
//
//   mul(a, b)     — one product, the paper's literal per-MAC hook;
//   dot(w, x, n)  — one output row's worth of products, exact-accumulated
//                   (adders never fault, §II). The default implementation
//                   loops mul(), so every context is correct by
//                   construction; the shipped contexts override it with
//                   span-level kernels that preserve the per-product fault
//                   model while skipping the per-MAC virtual dispatch.
#pragma once

#include <cstdint>

#include "faultsim/fault_injector.hpp"
#include "rng/random_source.hpp"

namespace shmd::nn {

class ArithmeticContext {
 public:
  virtual ~ArithmeticContext() = default;

  /// One multiply: returns the (possibly perturbed) product a*b.
  [[nodiscard]] virtual double mul(double a, double b) = 0;

  /// One dot product of length n: sum of (possibly perturbed) products
  /// w[i]*x[i], accumulated exactly in ascending index order (§II: adders
  /// never fault). The fallback routes every product through mul(), so a
  /// context that only implements mul() keeps bit-identical behavior;
  /// overrides must perturb each product with the same marginal
  /// distribution mul() would.
  [[nodiscard]] virtual double dot(const double* w, const double* x, std::size_t n) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += mul(w[i], x[i]);
    return acc;
  }

  [[nodiscard]] std::uint64_t mac_count() const noexcept { return macs_; }
  void reset_mac_count() noexcept { macs_ = 0; }

  [[nodiscard]] virtual const char* name() const noexcept = 0;

 protected:
  void count_mac() noexcept { ++macs_; }
  /// Span-level MAC accounting for dot() overrides that bypass mul().
  void count_macs(std::uint64_t n) noexcept { macs_ += n; }

 private:
  std::uint64_t macs_ = 0;
};

/// Bit-exact products (nominal voltage).
class ExactContext final : public ArithmeticContext {
 public:
  [[nodiscard]] double mul(double a, double b) override {
    count_mac();
    return a * b;
  }

  /// Plain dot product, free of per-MAC virtual dispatch. Same ascending
  /// accumulation order as the mul() fallback, so results stay
  /// bit-identical (the compiler may not reorder FP sums without
  /// -ffast-math, which this project never enables).
  [[nodiscard]] double dot(const double* w, const double* x, std::size_t n) override {
    count_macs(n);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += w[i] * x[i];
    return acc;
  }

  [[nodiscard]] const char* name() const noexcept override { return "exact"; }
};

/// Undervolted products: every multiply may suffer a stochastic timing
/// fault per the injector's error rate and bit-location distribution.
class FaultyContext final : public ArithmeticContext {
 public:
  /// Above this error rate the dot() kernel switches from geometric
  /// skip-ahead to per-product Bernoulli draws: the expected gap between
  /// faults drops below ~1/8 of a cache line of products and the log()
  /// in each geometric draw costs more than the Bernoulli compares it
  /// replaces. The paper's operating points (er <= 0.15, Fig. 2a) sit in
  /// the skip-ahead regime.
  static constexpr double kSkipAheadMaxRate = 0.125;

  explicit FaultyContext(faultsim::FaultInjector& injector) : injector_(&injector) {}

  [[nodiscard]] double mul(double a, double b) override {
    count_mac();
    return injector_->corrupt_product(a * b);
  }

  /// Geometric skip-ahead kernel: a Bernoulli(er) fault decision per
  /// product is equivalent to sampling the gap to the next fault site
  /// from Geometric(er), so the products between sampled sites run as an
  /// exact dot product and only the sites themselves pay for bit-flip
  /// corruption. Marginal per-product fault probability, bit-location
  /// distribution, and FaultStats.operations accounting all match the
  /// scalar mul() path (geometric memorylessness makes resampling at span
  /// boundaries sound); only the RNG consumption pattern differs, which
  /// is exactly the moving-target randomness the defense wants fresh per
  /// inference anyway.
  [[nodiscard]] double dot(const double* w, const double* x, std::size_t n) override {
    count_macs(n);
    faultsim::FaultInjector& inj = *injector_;
    if (inj.error_rate() > kSkipAheadMaxRate) {
      // Dense-fault regime: geometric gaps are mostly tiny and a log()
      // per gap costs more than a Bernoulli draw per product, so corrupt
      // per product (still one virtual call per row, not per MAC).
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) acc += inj.corrupt_product(w[i] * x[i]);
      return acc;
    }
    inj.count_operations(n);
    double acc = 0.0;
    std::size_t i = 0;
    while (i < n) {
      const std::size_t gap = inj.next_fault_gap();
      const bool fault_free = gap >= n - i;
      const std::size_t end = fault_free ? n : i + gap;
      // Accumulate the exact span into a local whose live range crosses no
      // call: `acc` itself is live across next_fault_gap(), so compilers
      // keep it spilled — and `span` must stay simultaneously live with
      // `acc` at the += below or regalloc coalesces them back into the
      // stack slot, paying a store/reload per product.
      double span = 0.0;
      for (std::size_t j = i; j < end; ++j) span += w[j] * x[j];
      acc += span;
      if (fault_free) break;
      acc += inj.corrupt_product_at_fault(w[end] * x[end]);
      i = end + 1;
    }
    return acc;
  }

  [[nodiscard]] const char* name() const noexcept override { return "undervolt-faulty"; }

  [[nodiscard]] faultsim::FaultInjector& injector() noexcept { return *injector_; }

 private:
  faultsim::FaultInjector* injector_;
};

/// Additive-noise defense baseline: product + sigma * N(0,1), with the
/// Gaussian drawn from an explicit randomness source (TRNG or PRNG). Each
/// MAC costs one gaussian() (two 64-bit queries) — the overhead §VIII
/// quantifies.
class NoiseContext final : public ArithmeticContext {
 public:
  NoiseContext(rng::RandomSource& source, double sigma) : source_(&source), sigma_(sigma) {}

  [[nodiscard]] double mul(double a, double b) override {
    count_mac();
    return a * b + sigma_ * source_->gaussian();
  }

  /// Batched row loop. Still one gaussian() query per product — the
  /// per-query randomness cost is the very overhead §VIII measures, so it
  /// must not be amortized away; only the per-MAC virtual dispatch is.
  [[nodiscard]] double dot(const double* w, const double* x, std::size_t n) override {
    count_macs(n);
    rng::RandomSource& src = *source_;
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += w[i] * x[i] + sigma_ * src.gaussian();
    return acc;
  }

  [[nodiscard]] const char* name() const noexcept override { return "additive-noise"; }

  [[nodiscard]] rng::RandomSource& source() noexcept { return *source_; }
  [[nodiscard]] double sigma() const noexcept { return sigma_; }

 private:
  rng::RandomSource* source_;
  double sigma_;
};

}  // namespace shmd::nn
