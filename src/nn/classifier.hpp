// Common binary-classifier interface.
//
// The attack layer reverse-engineers victims with three model classes —
// "Multi-Layer Perceptron (MLP) neural network, Logistic Regression (LR),
// and Decision Tree (DT). We selected MLP for its state-of-the-art
// performance, LR for its simplicity, and DT for its non-differentiability"
// (§VII.A). All three implement this interface so the reverse-engineering
// and evasion code is model-agnostic.
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "nn/arithmetic.hpp"
#include "nn/trainer.hpp"

namespace shmd::nn {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// P(malware | features), in [0, 1], with every product on the
  /// inference path routed through `ctx` (lint rule R1): under a
  /// FaultyContext *any* model class — MLP, LR, DT — runs with the
  /// stochastic defense, not just the Network-backed detectors.
  [[nodiscard]] virtual double predict(std::span<const double> x, ArithmeticContext& ctx) const = 0;

  /// P(malware | features) with bit-exact products (nominal voltage).
  [[nodiscard]] double predict(std::span<const double> x) const {
    ExactContext exact;
    return predict(x, exact);
  }

  /// Fit on labeled samples.
  virtual void fit(std::span<const TrainSample> data) = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Hard decision at the 0.5 operating point.
  [[nodiscard]] bool classify(std::span<const double> x) const { return predict(x) >= 0.5; }

  /// True when predict() is differentiable in the input (MLP/LR yes,
  /// DT no) — the evasion attack picks its search strategy on this.
  [[nodiscard]] virtual bool differentiable() const noexcept = 0;

  /// d predict / d x at `x` (numerical is fine for small feature dims).
  /// Only meaningful when differentiable().
  [[nodiscard]] virtual std::vector<double> gradient(std::span<const double> x) const;
};

}  // namespace shmd::nn
