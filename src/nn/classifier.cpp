#include "nn/classifier.hpp"

namespace shmd::nn {

std::vector<double> Classifier::gradient(std::span<const double> x) const {
  // Central-difference numerical gradient; subclasses with cheap analytic
  // forms override this.
  constexpr double kEps = 1e-5;
  std::vector<double> g(x.size(), 0.0);
  std::vector<double> probe(x.begin(), x.end());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double saved = probe[i];
    probe[i] = saved + kEps;
    const double up = predict(probe);
    probe[i] = saved - kEps;
    const double down = predict(probe);
    probe[i] = saved;
    g[i] = (up - down) / (2.0 * kEps);  // shmd-lint: exact-ok(finite-difference step)
  }
  return g;
}

}  // namespace shmd::nn
