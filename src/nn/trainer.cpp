#include "nn/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "rng/xoshiro256ss.hpp"

namespace shmd::nn {

namespace {

/// Fast exact forward pass storing per-layer pre-activations (z) and
/// activations (a) for backprop. a[0] is the input.
struct Workspace {
  std::vector<std::vector<double>> z;  // per layer
  std::vector<std::vector<double>> a;  // a[0] = input, a[l+1] = layer l out

  void resize(const Network& net) {
    const std::size_t n = net.num_layers();
    z.resize(n);
    a.resize(n + 1);
    for (std::size_t l = 0; l < n; ++l) {
      z[l].resize(net.layer(l).out_dim);
      a[l + 1].resize(net.layer(l).out_dim);
    }
  }
};

void forward_exact(const Network& net, std::span<const double> x, Workspace& ws) {
  ws.a[0].assign(x.begin(), x.end());
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    const Layer& layer = net.layer(l);
    const std::vector<double>& in = ws.a[l];
    for (std::size_t o = 0; o < layer.out_dim; ++o) {
      double acc = layer.biases[o];
      const double* wrow = &layer.weights[o * layer.in_dim];
      // shmd-lint: exact-ok(training-time forward for backprop, runs at nominal voltage)
      for (std::size_t i = 0; i < layer.in_dim; ++i) acc += wrow[i] * in[i];
      ws.z[l][o] = acc;
      ws.a[l + 1][o] = activate(layer.activation, acc);
    }
  }
}

/// Per-layer gradient buffers, same shapes as the network parameters.
struct Gradients {
  std::vector<std::vector<double>> dw;
  std::vector<std::vector<double>> db;

  void resize(const Network& net) {
    dw.resize(net.num_layers());
    db.resize(net.num_layers());
    for (std::size_t l = 0; l < net.num_layers(); ++l) {
      dw[l].assign(net.layer(l).weights.size(), 0.0);
      db[l].assign(net.layer(l).biases.size(), 0.0);
    }
  }
  void zero() {
    for (auto& v : dw) std::fill(v.begin(), v.end(), 0.0);
    for (auto& v : db) std::fill(v.begin(), v.end(), 0.0);
  }
};

/// Accumulate the gradient of weight * BCE(sample) into `grads`. Returns
/// the sample's (weighted) loss. Assumes a single sigmoid output unit
/// (checked by fit()).
double backprop_sample(const Network& net, const TrainSample& sample, double weight,
                       Workspace& ws, Gradients& grads,
                       std::vector<std::vector<double>>& deltas) {
  forward_exact(net, sample.x, ws);
  const double yhat = std::clamp(ws.a.back()[0], 1e-12, 1.0 - 1e-12);
  // shmd-lint: exact-ok(weighted BCE loss is training bookkeeping)
  const double loss =
      -weight * (sample.y * std::log(yhat) + (1.0 - sample.y) * std::log(1.0 - yhat));

  // Output delta for sigmoid + BCE collapses to (yhat - y).
  const std::size_t last = net.num_layers() - 1;
  deltas[last].assign(net.layer(last).out_dim, 0.0);
  deltas[last][0] = weight * (yhat - sample.y);  // shmd-lint: exact-ok(backprop output delta)

  for (std::size_t l = last; l-- > 0;) {
    const Layer& next = net.layer(l + 1);
    const Layer& cur = net.layer(l);
    deltas[l].assign(cur.out_dim, 0.0);
    for (std::size_t i = 0; i < cur.out_dim; ++i) {
      double sum = 0.0;
      for (std::size_t o = 0; o < next.out_dim; ++o) {
        // shmd-lint: exact-ok(backprop delta propagation, training only)
        sum += next.weights[o * next.in_dim + i] * deltas[l + 1][o];
      }
      // shmd-lint: exact-ok(backprop chain rule, training only)
      deltas[l][i] = sum * activate_derivative(cur.activation, ws.z[l][i], ws.a[l + 1][i]);
    }
  }

  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    const Layer& layer = net.layer(l);
    const std::vector<double>& in = ws.a[l];
    for (std::size_t o = 0; o < layer.out_dim; ++o) {
      const double d = deltas[l][o];
      double* gw = &grads.dw[l][o * layer.in_dim];
      // shmd-lint: exact-ok(weight-gradient accumulation, training only)
      for (std::size_t i = 0; i < layer.in_dim; ++i) gw[i] += d * in[i];
      grads.db[l][o] += d;
    }
  }
  return loss;
}

struct Snapshot {
  std::vector<std::vector<double>> weights;
  std::vector<std::vector<double>> biases;

  static Snapshot of(const Network& net) {
    Snapshot s;
    for (std::size_t l = 0; l < net.num_layers(); ++l) {
      s.weights.push_back(net.layer(l).weights);
      s.biases.push_back(net.layer(l).biases);
    }
    return s;
  }
  void restore(Network& net) const {
    for (std::size_t l = 0; l < net.num_layers(); ++l) {
      net.layer(l).weights = weights[l];
      net.layer(l).biases = biases[l];
    }
  }
};

}  // namespace

Trainer::Trainer(TrainConfig config) : config_(config) {
  if (config_.epochs <= 0) throw std::invalid_argument("Trainer: epochs must be > 0");
  if (config_.batch_size == 0) throw std::invalid_argument("Trainer: batch_size must be > 0");
}

double Trainer::loss(const Network& net, std::span<const TrainSample> data) {
  if (data.empty()) return 0.0;
  double total = 0.0;
  for (const TrainSample& s : data) {
    const double yhat = std::clamp(net.forward(s.x)[0], 1e-12, 1.0 - 1e-12);
    // shmd-lint: exact-ok(validation-loss metric, not an inference decision)
    total += -(s.y * std::log(yhat) + (1.0 - s.y) * std::log(1.0 - yhat));
  }
  return total / static_cast<double>(data.size());
}

TrainReport Trainer::fit(Network& net, std::span<const TrainSample> train,
                         std::span<const TrainSample> validation) {
  if (train.empty()) throw std::invalid_argument("Trainer::fit: empty training set");
  if (net.output_dim() != 1) {
    throw std::invalid_argument("Trainer::fit: binary head expected (output_dim == 1)");
  }
  for (const TrainSample& s : train) {
    if (s.x.size() != net.input_dim()) {
      throw std::invalid_argument("Trainer::fit: sample dimension mismatch");
    }
  }

  Workspace ws;
  ws.resize(net);
  Gradients grads;
  grads.resize(net);
  std::vector<std::vector<double>> deltas(net.num_layers());

  // SGD state.
  Gradients velocity;
  velocity.resize(net);
  // iRPROP− state.
  Gradients prev_grad;
  prev_grad.resize(net);
  Gradients step;
  step.resize(net);
  for (auto& v : step.dw) std::fill(v.begin(), v.end(), config_.rprop_delta0);
  for (auto& v : step.db) std::fill(v.begin(), v.end(), config_.rprop_delta0);

  std::vector<std::size_t> order(train.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng::Xoshiro256ss shuffle_gen(config_.shuffle_seed);

  double pos_weight = 1.0;
  double neg_weight = 1.0;
  if (config_.balance_classes) {
    double positives = 0.0;
    for (const TrainSample& s : train) positives += s.y;
    const double n = static_cast<double>(train.size());
    if (positives > 0.0 && positives < n) {
      pos_weight = n / (2.0 * positives);        // shmd-lint: exact-ok(class-balance setup)
      neg_weight = n / (2.0 * (n - positives));  // shmd-lint: exact-ok(class-balance setup)
    }
  }
  const auto sample_weight = [&](const TrainSample& s) {
    return s.y > 0.5 ? pos_weight : neg_weight;
  };

  TrainReport report;
  double best_val = std::numeric_limits<double>::infinity();
  int since_best = 0;
  Snapshot best_params = Snapshot::of(net);

  const auto apply_l2 = [&](std::size_t l) {
    if (config_.l2 <= 0.0) return;
    const Layer& layer = net.layer(l);
    for (std::size_t k = 0; k < layer.weights.size(); ++k) {
      grads.dw[l][k] += config_.l2 * layer.weights[k];  // shmd-lint: exact-ok(L2 penalty)
    }
  };

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    double epoch_loss = 0.0;

    if (config_.algorithm == TrainAlgorithm::kSgd) {
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[shuffle_gen.below(i)]);
      }
      for (std::size_t start = 0; start < order.size(); start += config_.batch_size) {
        const std::size_t end = std::min(start + config_.batch_size, order.size());
        grads.zero();
        for (std::size_t k = start; k < end; ++k) {
          const TrainSample& s = train[order[k]];
          epoch_loss += backprop_sample(net, s, sample_weight(s), ws, grads, deltas);
        }
        const double inv_batch = 1.0 / static_cast<double>(end - start);
        for (std::size_t l = 0; l < net.num_layers(); ++l) {
          apply_l2(l);
          Layer& layer = net.layer(l);
          for (std::size_t k = 0; k < layer.weights.size(); ++k) {
            // shmd-lint: exact-ok(SGD momentum update, training only)
            velocity.dw[l][k] = config_.momentum * velocity.dw[l][k] -
                                config_.learning_rate * grads.dw[l][k] * inv_batch;
            layer.weights[k] += velocity.dw[l][k];
          }
          for (std::size_t k = 0; k < layer.biases.size(); ++k) {
            // shmd-lint: exact-ok(SGD momentum update, training only)
            velocity.db[l][k] = config_.momentum * velocity.db[l][k] -
                                config_.learning_rate * grads.db[l][k] * inv_batch;
            layer.biases[k] += velocity.db[l][k];
          }
        }
      }
      epoch_loss /= static_cast<double>(train.size());
    } else {
      // iRPROP−: full-batch gradient, sign-based per-parameter steps.
      grads.zero();
      for (const TrainSample& s : train) {
        epoch_loss += backprop_sample(net, s, sample_weight(s), ws, grads, deltas);
      }
      epoch_loss /= static_cast<double>(train.size());

      const auto rprop_update = [&](double& param, double grad, double& prev, double& delta) {
        const double sign_product = grad * prev;  // shmd-lint: exact-ok(iRPROP sign test)
        if (sign_product > 0.0) {
          // shmd-lint: exact-ok(iRPROP step-size adaptation, training only)
          delta = std::min(delta * config_.rprop_eta_plus, config_.rprop_delta_max);
          param -= (grad > 0.0 ? delta : -delta);
          prev = grad;
        } else if (sign_product < 0.0) {
          // shmd-lint: exact-ok(iRPROP step-size adaptation, training only)
          delta = std::max(delta * config_.rprop_eta_minus, config_.rprop_delta_min);
          prev = 0.0;  // iRPROP−: skip update after a sign change
        } else {
          if (grad != 0.0) param -= (grad > 0.0 ? delta : -delta);
          prev = grad;
        }
      };

      for (std::size_t l = 0; l < net.num_layers(); ++l) {
        apply_l2(l);
        Layer& layer = net.layer(l);
        for (std::size_t k = 0; k < layer.weights.size(); ++k) {
          rprop_update(layer.weights[k], grads.dw[l][k], prev_grad.dw[l][k], step.dw[l][k]);
        }
        for (std::size_t k = 0; k < layer.biases.size(); ++k) {
          rprop_update(layer.biases[k], grads.db[l][k], prev_grad.db[l][k], step.db[l][k]);
        }
      }
    }

    report.epochs_run = epoch + 1;
    report.final_train_loss = epoch_loss;

    if (!validation.empty() && config_.patience > 0) {
      const double val = loss(net, validation);
      report.final_val_loss = val;
      if (val < best_val - config_.min_delta) {
        best_val = val;
        since_best = 0;
        best_params = Snapshot::of(net);
      } else if (++since_best >= config_.patience) {
        best_params.restore(net);
        report.early_stopped = true;
        report.final_val_loss = best_val;
        break;
      }
    }
  }

  if (!validation.empty() && config_.patience > 0 && !report.early_stopped) {
    // Keep the best validation-loss parameters even without early stop.
    if (best_val < loss(net, validation)) best_params.restore(net);
    report.final_val_loss = std::min(best_val, report.final_val_loss);
  }
  return report;
}

}  // namespace shmd::nn
