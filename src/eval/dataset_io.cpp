#include "eval/dataset_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "trace/families.hpp"

namespace shmd::eval {

void export_windows_csv(const trace::Dataset& dataset,
                        std::span<const std::size_t> indices, trace::FeatureConfig config,
                        std::ostream& os) {
  const std::size_t dim = trace::view_dim(config.view);
  os << "program_id,family,label";
  for (std::size_t f = 0; f < dim; ++f) os << ",f" << f;
  os << '\n';
  os.precision(17);
  for (std::size_t idx : indices) {
    const trace::ProgramSample& sample = dataset.samples().at(idx);
    for (const std::vector<double>& window : sample.features.windows(config)) {
      os << sample.program.id() << ',' << trace::family_name(sample.program.family()) << ','
         << (sample.malware() ? 1 : 0);
      for (double x : window) os << ',' << x;
      os << '\n';
    }
  }
  if (!os) throw std::runtime_error("export_windows_csv: stream write failed");
}

std::vector<ImportedWindow> import_windows_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) throw std::runtime_error("import_windows_csv: empty input");
  if (line.rfind("program_id,family,label", 0) != 0) {
    throw std::runtime_error("import_windows_csv: unexpected header");
  }
  // Feature dimensionality from the header: columns named f<digits>.
  std::size_t dim = 0;
  {
    std::istringstream header(line);
    std::string column;
    while (std::getline(header, column, ',')) {
      if (column.size() >= 2 && column[0] == 'f' &&
          column.find_first_not_of("0123456789", 1) == std::string::npos) {
        ++dim;
      }
    }
  }
  if (dim == 0) throw std::runtime_error("import_windows_csv: no feature columns");

  std::vector<ImportedWindow> out;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string cell;
    ImportedWindow window;

    if (!std::getline(row, cell, ',')) {
      throw std::runtime_error("import_windows_csv: missing program_id on line " +
                               std::to_string(line_no));
    }
    window.program_id = static_cast<std::uint32_t>(std::stoul(cell));
    if (!std::getline(row, window.family, ',')) {
      throw std::runtime_error("import_windows_csv: missing family on line " +
                               std::to_string(line_no));
    }
    if (!std::getline(row, cell, ',')) {
      throw std::runtime_error("import_windows_csv: missing label on line " +
                               std::to_string(line_no));
    }
    window.sample.y = std::stod(cell);
    if (window.sample.y != 0.0 && window.sample.y != 1.0) {
      throw std::runtime_error("import_windows_csv: label must be 0 or 1 on line " +
                               std::to_string(line_no));
    }
    window.sample.x.reserve(dim);
    while (std::getline(row, cell, ',')) window.sample.x.push_back(std::stod(cell));
    if (window.sample.x.size() != dim) {
      throw std::runtime_error("import_windows_csv: expected " + std::to_string(dim) +
                               " features on line " + std::to_string(line_no) + ", got " +
                               std::to_string(window.sample.x.size()));
    }
    out.push_back(std::move(window));
  }
  return out;
}

std::vector<nn::TrainSample> to_train_samples(std::vector<ImportedWindow> windows) {
  std::vector<nn::TrainSample> out;
  out.reserve(windows.size());
  for (ImportedWindow& w : windows) out.push_back(std::move(w.sample));
  return out;
}

}  // namespace shmd::eval
