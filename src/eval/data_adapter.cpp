#include "eval/data_adapter.hpp"

#include <stdexcept>

namespace shmd::eval {

std::vector<nn::TrainSample> window_samples(const trace::Dataset& dataset,
                                            std::span<const std::size_t> indices,
                                            trace::FeatureConfig config) {
  std::vector<nn::TrainSample> out;
  for (std::size_t idx : indices) {
    const trace::ProgramSample& sample = dataset.samples().at(idx);
    const double label = sample.malware() ? 1.0 : 0.0;
    for (const std::vector<double>& window : sample.features.windows(config)) {
      out.push_back(nn::TrainSample{window, label});
    }
  }
  return out;
}

std::vector<std::vector<double>> concat_views(
    std::span<const std::vector<std::vector<double>>> per_view_windows) {
  if (per_view_windows.empty()) return {};
  const std::size_t n_windows = per_view_windows.front().size();
  for (const auto& view : per_view_windows) {
    if (view.size() != n_windows) {
      throw std::invalid_argument("concat_views: window-count mismatch across views");
    }
  }
  std::vector<std::vector<double>> out(n_windows);
  for (std::size_t w = 0; w < n_windows; ++w) {
    for (const auto& view : per_view_windows) {
      out[w].insert(out[w].end(), view[w].begin(), view[w].end());
    }
  }
  return out;
}

std::vector<nn::TrainSample> window_samples_multiview(
    const trace::Dataset& dataset, std::span<const std::size_t> indices,
    std::span<const trace::FeatureConfig> configs) {
  if (configs.empty()) throw std::invalid_argument("window_samples_multiview: no views");
  for (const auto& c : configs) {
    if (c.period != configs.front().period) {
      throw std::invalid_argument("window_samples_multiview: views must share one period");
    }
  }
  std::vector<nn::TrainSample> out;
  for (std::size_t idx : indices) {
    const trace::ProgramSample& sample = dataset.samples().at(idx);
    const double label = sample.malware() ? 1.0 : 0.0;
    std::vector<std::vector<std::vector<double>>> per_view;
    per_view.reserve(configs.size());
    for (const auto& c : configs) per_view.push_back(sample.features.windows(c));
    for (auto& window : concat_views(per_view)) {
      out.push_back(nn::TrainSample{std::move(window), label});
    }
  }
  return out;
}

std::size_t multiview_dim(std::span<const trace::FeatureConfig> configs) {
  std::size_t dim = 0;
  for (const auto& c : configs) dim += trace::view_dim(c.view);
  return dim;
}

}  // namespace shmd::eval
