#include "eval/metrics.hpp"

namespace shmd::eval {

void ConfusionMatrix::add(bool actual_malware, bool flagged) noexcept {
  if (actual_malware) {
    flagged ? ++tp_ : ++fn_;
  } else {
    flagged ? ++fp_ : ++tn_;
  }
}

void ConfusionMatrix::merge(const ConfusionMatrix& other) noexcept {
  tp_ += other.tp_;
  fp_ += other.fp_;
  tn_ += other.tn_;
  fn_ += other.fn_;
}

namespace {
double ratio(std::uint64_t num, std::uint64_t den) noexcept {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}
}  // namespace

double ConfusionMatrix::accuracy() const noexcept { return ratio(tp_ + tn_, total()); }
double ConfusionMatrix::fpr() const noexcept { return ratio(fp_, fp_ + tn_); }
double ConfusionMatrix::fnr() const noexcept { return ratio(fn_, fn_ + tp_); }
double ConfusionMatrix::precision() const noexcept { return ratio(tp_, tp_ + fp_); }
double ConfusionMatrix::recall() const noexcept { return ratio(tp_, tp_ + fn_); }

double ConfusionMatrix::f1() const noexcept {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

}  // namespace shmd::eval
