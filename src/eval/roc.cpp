#include "eval/roc.hpp"

#include <algorithm>
#include <stdexcept>

namespace shmd::eval {

std::vector<RocPoint> roc_curve(std::span<const ScoredSample> samples) {
  std::size_t positives = 0;
  std::size_t negatives = 0;
  for (const ScoredSample& s : samples) {
    ++(s.positive ? positives : negatives);
  }
  if (positives == 0 || negatives == 0) {
    throw std::invalid_argument("roc_curve: need both positive and negative samples");
  }

  std::vector<ScoredSample> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const ScoredSample& a, const ScoredSample& b) { return a.score < b.score; });

  std::vector<RocPoint> curve;
  curve.reserve(sorted.size() + 2);
  // Threshold below every score: everything flagged.
  curve.push_back(RocPoint{sorted.front().score - 1.0, 1.0, 1.0});

  // Walking the sorted scores upward, samples below the threshold stop
  // being flagged.
  std::size_t tp = positives;
  std::size_t fp = negatives;
  std::size_t i = 0;
  while (i < sorted.size()) {
    const double threshold = sorted[i].score;
    // Remove every sample strictly below the next distinct threshold.
    while (i < sorted.size() && sorted[i].score == threshold) {
      --(sorted[i].positive ? tp : fp);
      ++i;
    }
    const double next_threshold =
        i < sorted.size() ? sorted[i].score : sorted.back().score + 1.0;
    curve.push_back(RocPoint{next_threshold,
                             static_cast<double>(tp) / static_cast<double>(positives),
                             static_cast<double>(fp) / static_cast<double>(negatives)});
  }
  return curve;
}

double auc(std::span<const RocPoint> curve) {
  if (curve.size() < 2) throw std::invalid_argument("auc: curve too short");
  // Points run from (1,1) down to (0,0); integrate TPR over FPR.
  double area = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const double dx = curve[i - 1].fpr - curve[i].fpr;
    area += dx * 0.5 * (curve[i - 1].tpr + curve[i].tpr);
  }
  return area;
}

double auc(std::span<const ScoredSample> samples) { return auc(roc_curve(samples)); }

RocPoint best_youden(std::span<const RocPoint> curve) {
  if (curve.empty()) throw std::invalid_argument("best_youden: empty curve");
  RocPoint best = curve.front();
  for (const RocPoint& p : curve) {
    if (p.tpr - p.fpr > best.tpr - best.fpr) best = p;
  }
  return best;
}

}  // namespace shmd::eval
