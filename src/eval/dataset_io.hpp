// Dataset interchange: CSV export/import of window features.
//
// Lets the synthetic corpus leave the C++ world (scikit-learn baselines,
// plotting) and external window datasets come in (e.g., features extracted
// from a real Pin deployment) so detectors can be trained on them through
// the same pipeline.
//
// Format: header `program_id,family,label,f0,...,fN`, one row per window.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/trainer.hpp"
#include "trace/dataset.hpp"

namespace shmd::eval {

/// Export every window of `config` for the samples in `indices`.
void export_windows_csv(const trace::Dataset& dataset,
                        std::span<const std::size_t> indices, trace::FeatureConfig config,
                        std::ostream& os);

/// Row as imported: the training sample plus its provenance columns.
struct ImportedWindow {
  std::uint32_t program_id = 0;
  std::string family;
  nn::TrainSample sample;
};

/// Parse a CSV produced by export_windows_csv (or hand-built to the same
/// schema). Throws std::runtime_error on malformed input; all rows must
/// have the same feature dimensionality.
[[nodiscard]] std::vector<ImportedWindow> import_windows_csv(std::istream& is);

/// Convenience: strip provenance, keep the training samples.
[[nodiscard]] std::vector<nn::TrainSample> to_train_samples(
    std::vector<ImportedWindow> windows);

}  // namespace shmd::eval
