// Adapters from the trace-level Dataset to classifier training samples.
//
// Detectors are *window* classifiers: every window of a program inherits
// the program's label (the standard HMD training setup). The multi-view
// adapter concatenates several views of the same window — used when the
// attacker reverse-engineers an RHMD "using all the feature vectors used
// in the construction" (§VII.C).
#pragma once

#include <span>
#include <vector>

#include "nn/trainer.hpp"
#include "trace/dataset.hpp"

namespace shmd::eval {

/// One TrainSample per window of each program in `indices`, using the
/// features of `config`. Label: 1 for malware programs.
[[nodiscard]] std::vector<nn::TrainSample> window_samples(
    const trace::Dataset& dataset, std::span<const std::size_t> indices,
    trace::FeatureConfig config);

/// Multi-view variant: for each window index, the feature vectors of all
/// `configs` (which must share one period) are concatenated.
[[nodiscard]] std::vector<nn::TrainSample> window_samples_multiview(
    const trace::Dataset& dataset, std::span<const std::size_t> indices,
    std::span<const trace::FeatureConfig> configs);

/// Concatenate several views of the same window list (helper shared with
/// the attack layer when it re-extracts features from mutated traces).
[[nodiscard]] std::vector<std::vector<double>> concat_views(
    std::span<const std::vector<std::vector<double>>> per_view_windows);

/// Total input dimension of a multi-view concatenation.
[[nodiscard]] std::size_t multiview_dim(std::span<const trace::FeatureConfig> configs);

}  // namespace shmd::eval
