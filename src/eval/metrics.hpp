// Binary-detection metrics: the quantities every figure in the paper's
// evaluation reports (accuracy, FPR, FNR in Fig. 2a/6/8; detection and
// evasion rates in Figs. 4/5).
#pragma once

#include <cstdint>

namespace shmd::eval {

class ConfusionMatrix {
 public:
  /// Record one decision. `actual_malware` is ground truth; `flagged` is
  /// the detector's verdict.
  void add(bool actual_malware, bool flagged) noexcept;
  void merge(const ConfusionMatrix& other) noexcept;
  void reset() noexcept { *this = ConfusionMatrix{}; }

  [[nodiscard]] std::uint64_t tp() const noexcept { return tp_; }
  [[nodiscard]] std::uint64_t fp() const noexcept { return fp_; }
  [[nodiscard]] std::uint64_t tn() const noexcept { return tn_; }
  [[nodiscard]] std::uint64_t fn() const noexcept { return fn_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return tp_ + fp_ + tn_ + fn_; }

  [[nodiscard]] double accuracy() const noexcept;
  /// False positive rate: benign flagged as malware.
  [[nodiscard]] double fpr() const noexcept;
  /// False negative rate: malware that slipped through.
  [[nodiscard]] double fnr() const noexcept;
  [[nodiscard]] double precision() const noexcept;
  [[nodiscard]] double recall() const noexcept;
  [[nodiscard]] double f1() const noexcept;

 private:
  std::uint64_t tp_ = 0;
  std::uint64_t fp_ = 0;
  std::uint64_t tn_ = 0;
  std::uint64_t fn_ = 0;
};

}  // namespace shmd::eval
