// ROC analysis: threshold-independent detector comparison.
//
// The paper reports accuracy/FPR/FNR at the 0.5 operating point; ROC/AUC
// answers the deployment question behind Fig. 2(a)'s trade-off — how much
// *ranking* quality the undervolting noise costs, independent of where the
// alarm threshold is later placed (cf. the AlarmPolicy layer).
#pragma once

#include <span>
#include <vector>

namespace shmd::eval {

/// One labeled score: the detector's output for a sample whose ground
/// truth is `positive` (malware).
struct ScoredSample {
  double score = 0.0;
  bool positive = false;
};

struct RocPoint {
  double threshold = 0.0;
  double tpr = 0.0;  ///< true-positive rate at score >= threshold
  double fpr = 0.0;  ///< false-positive rate at score >= threshold
};

/// Full ROC curve: one point per distinct score threshold, ordered from
/// the most permissive (threshold below every score: TPR=FPR=1) to the
/// strictest (TPR=FPR=0). Requires at least one positive and one negative.
[[nodiscard]] std::vector<RocPoint> roc_curve(std::span<const ScoredSample> samples);

/// Area under the ROC curve (trapezoidal). 0.5 = chance, 1.0 = perfect.
[[nodiscard]] double auc(std::span<const RocPoint> curve);

/// Convenience: AUC straight from labeled scores.
[[nodiscard]] double auc(std::span<const ScoredSample> samples);

/// The threshold whose (TPR - FPR) is maximal (Youden's J) — a principled
/// default operating point when 0.5 is not calibrated.
[[nodiscard]] RocPoint best_youden(std::span<const RocPoint> curve);

}  // namespace shmd::eval
