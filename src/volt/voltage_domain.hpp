// VoltageDomain: one per-core integrated voltage regulator (VR).
//
// §III of the paper: modern CPUs expose per-core VRs; detection is
// offloaded to a dedicated core whose VR is placed under *trusted control*
// (a Stochastic-HMD co-processor IP or TEE enclave), otherwise the
// adversary could simply scale the voltage back and disable the defense.
// We model both pieces: the domain programs an emulated MSR 0x150, and an
// exclusive-control token gates who may change the offset once the
// defense claims the rail.
#pragma once

#include <cstdint>
#include <optional>

#include "volt/msr.hpp"
#include "volt/volt_fault_model.hpp"

namespace shmd::volt {

/// Thrown when an offset change is attempted without holding the
/// exclusive-control token (the "adversary tries to disable the defense"
/// path — §III Trusted control).
class VoltageControlError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class VoltageDomain {
 public:
  /// `plane` selects the MSR voltage plane (0 = core, per the paper).
  VoltageDomain(MsrInterface& msr, unsigned plane, VoltFaultModel model,
                double temperature_c = 49.0);

  /// Claim exclusive control of this rail; returns the token subsequent
  /// set_offset_mv calls must present. Fails if already claimed.
  [[nodiscard]] std::uint64_t acquire_exclusive();
  void release_exclusive(std::uint64_t token);
  [[nodiscard]] bool exclusively_controlled() const noexcept { return token_.has_value(); }

  /// Program the rail offset (negative = undervolt). Throws
  /// SystemFreezeError if the offset would lock the core up,
  /// VoltageControlError if the rail is claimed and the token is wrong.
  void set_offset_mv(double offset_mv, std::optional<std::uint64_t> token = std::nullopt);

  [[nodiscard]] double offset_mv() const;
  [[nodiscard]] double voltage_v() const;
  [[nodiscard]] double nominal_voltage_v() const noexcept {
    return model_.profile().nominal_voltage_v;
  }

  void set_temperature_c(double t) noexcept { temperature_c_ = t; }
  [[nodiscard]] double temperature_c() const noexcept { return temperature_c_; }

  /// Per-multiplication fault probability at the current operating point.
  [[nodiscard]] double error_rate() const;

  [[nodiscard]] const VoltFaultModel& model() const noexcept { return model_; }

 private:
  MsrInterface* msr_;
  unsigned plane_;
  VoltFaultModel model_;
  double temperature_c_;
  std::optional<std::uint64_t> token_;
  std::uint64_t next_token_ = 0x5EC0DE;
};

/// RAII undervolt window — the paper's TEE usage pattern: "the voltage
/// needs to be undervolted directly after entering the TEE and scaled back
/// to the nominal voltage just before exiting the TEE" (§IX). Construction
/// applies the offset; destruction restores the previous one.
class UndervoltGuard {
 public:
  UndervoltGuard(VoltageDomain& domain, double offset_mv,
                 std::optional<std::uint64_t> token = std::nullopt);
  ~UndervoltGuard();

  UndervoltGuard(const UndervoltGuard&) = delete;
  UndervoltGuard& operator=(const UndervoltGuard&) = delete;

 private:
  VoltageDomain* domain_;
  double saved_offset_mv_;
  std::optional<std::uint64_t> token_;
};

}  // namespace shmd::volt
