// CpuPackage: a multi-core socket with per-core integrated voltage
// regulators — the deployment topology §III describes.
//
// "Recent systems/computers have a multi-core CPU... modern processors
//  have several integrated voltage regulators (VRs), which can control the
//  supply voltage of each core independently. Therefore, detection can be
//  offloaded to a specific core... monitored applications can continue
//  running (without interruption) since detection is offloaded to another
//  core."
//
// The package owns one MSR interface and one VoltageDomain per core (all
// sharing the chip's silicon profile, each with its own die temperature).
// Undervolting the detection core must leave every other rail untouched —
// the property the tests pin down.
#pragma once

#include <memory>
#include <vector>

#include "volt/voltage_domain.hpp"

namespace shmd::volt {

class CpuPackage {
 public:
  /// Up to kNumPlanes cores (one MSR voltage plane each).
  CpuPackage(unsigned cores, DeviceProfile profile, double ambient_temp_c = 45.0);

  [[nodiscard]] unsigned core_count() const noexcept {
    return static_cast<unsigned>(cores_.size());
  }
  [[nodiscard]] VoltageDomain& core(unsigned index);
  [[nodiscard]] const VoltageDomain& core(unsigned index) const;

  /// Designate `index` as the detection core and claim its rail; returns
  /// the exclusive-control token (§III trusted control).
  [[nodiscard]] std::uint64_t dedicate_detection_core(unsigned index);
  [[nodiscard]] bool has_detection_core() const noexcept { return detection_core_ >= 0; }
  [[nodiscard]] unsigned detection_core() const;

  /// Package-level invariant: every core except the detection core sits at
  /// nominal voltage (monitored applications run unperturbed).
  [[nodiscard]] bool application_cores_nominal() const;

  [[nodiscard]] MsrInterface& msr() noexcept { return msr_; }

 private:
  MsrInterface msr_;
  std::vector<std::unique_ptr<VoltageDomain>> cores_;
  int detection_core_ = -1;
};

}  // namespace shmd::volt
