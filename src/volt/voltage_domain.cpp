#include "volt/voltage_domain.hpp"

namespace shmd::volt {

VoltageDomain::VoltageDomain(MsrInterface& msr, unsigned plane, VoltFaultModel model,
                             double temperature_c)
    : msr_(&msr), plane_(plane), model_(model), temperature_c_(temperature_c) {
  if (plane >= kNumPlanes) throw MsrError("VoltageDomain: invalid plane");
}

std::uint64_t VoltageDomain::acquire_exclusive() {
  if (token_.has_value()) {
    throw VoltageControlError("voltage rail is already under exclusive control");
  }
  const std::uint64_t token = ++next_token_;
  token_ = token;
  return token;
}

void VoltageDomain::release_exclusive(std::uint64_t token) {
  // optional<uint64_t> != uint64_t is false for an empty optional, so this
  // one comparison covers both "not under exclusive control" and "wrong
  // token" — and never dereferences the optional.
  if (token_ != token) {
    throw VoltageControlError("release_exclusive: wrong control token");
  }
  token_.reset();
}

void VoltageDomain::set_offset_mv(double offset_mv, std::optional<std::uint64_t> token) {
  if (token_.has_value() && token != token_) {
    throw VoltageControlError("voltage rail is under exclusive control");
  }
  if (model_.freezes(offset_mv, temperature_c_)) {
    throw SystemFreezeError(model_.profile().nominal_voltage_v + offset_mv / 1000.0);
  }
  msr_->wrmsr(kVoltagePlaneMsr, MsrInterface::encode_write(plane_, offset_mv));
}

double VoltageDomain::offset_mv() const { return msr_->plane_offset_mv(plane_); }

double VoltageDomain::voltage_v() const {
  return model_.profile().nominal_voltage_v + offset_mv() / 1000.0;
}

double VoltageDomain::error_rate() const {
  return model_.fault_probability(offset_mv(), temperature_c_);
}

UndervoltGuard::UndervoltGuard(VoltageDomain& domain, double offset_mv,
                               std::optional<std::uint64_t> token)
    : domain_(&domain), saved_offset_mv_(domain.offset_mv()), token_(token) {
  domain_->set_offset_mv(offset_mv, token_);
}

UndervoltGuard::~UndervoltGuard() {
  // Restoring to the saved (shallower) offset cannot freeze; control-token
  // errors here would indicate a programming bug upstream, so let them
  // terminate rather than swallow them silently.
  domain_->set_offset_mv(saved_offset_mv_, token_);
}

}  // namespace shmd::volt
