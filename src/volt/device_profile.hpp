// Per-device silicon profile for the undervolting fault model.
//
// §IX ("Calibration") stresses that undervolting-induced faults vary across
// devices and with temperature, so every Stochastic-HMD deployment must be
// calibrated per device. We model that variability explicitly: a profile is
// sampled per simulated chip (process variation), and all voltage→fault
// computations are temperature-dependent.
#pragma once

#include <cstdint>

namespace shmd::volt {

struct DeviceProfile {
  /// Nominal core supply at the paper's operating point (i7-5557U, 2.2 GHz).
  double nominal_voltage_v = 1.18;
  double frequency_ghz = 2.2;

  /// Undervolt depth (positive mV below nominal) where the *most critical*
  /// operand patterns start faulting. Paper §II: faults appeared between
  /// −103 mV and −145 mV depending on inputs, at 49 °C.
  double fault_onset_mv = 103.0;
  /// Depth where effectively every multiplication faults.
  double fault_saturation_mv = 145.0;
  /// Depth beyond which the core locks up (paper: "until a fault or system
  /// freeze occurred").
  double freeze_mv = 158.0;

  /// Reference temperature for the onset numbers above (paper: 49 °C).
  double reference_temp_c = 49.0;
  /// Onset shift per °C: hotter silicon is slower, so faults appear at
  /// shallower undervolt (mobility/threshold-voltage compensation, [8]).
  double temp_coefficient_mv_per_c = 0.45;

  /// Sample a jittered profile for a fresh chip: onset/saturation/freeze
  /// each move by a few mV (process variation), deterministic in `seed`.
  [[nodiscard]] static DeviceProfile sample(std::uint64_t seed);
};

}  // namespace shmd::volt
