// ThermalGovernor: runtime voltage management for a deployed
// Stochastic-HMD.
//
// §IX: "the temperature needs to be considered, since it affects the
// faults. Therefore, the voltage regulator that controls the
// Stochastic-HMD needs to dynamically adjust the undervolting level based
// on the current temperature to achieve the best accuracy/robustness
// tradeoff."
//
// The governor owns the rail's exclusive-control token, keeps a sparse
// temperature→offset calibration table (filled lazily by empirical
// calibration), and re-programs the offset whenever the die temperature
// drifts beyond a guard band. Between calibrated points it interpolates —
// the fault window shifts linearly with temperature to first order.
#pragma once

#include <cstdint>
#include <map>

#include "volt/calibration.hpp"
#include "volt/voltage_domain.hpp"

namespace shmd::volt {

struct ThermalGovernorConfig {
  double target_error_rate = 0.10;
  /// Recalibrate / re-look-up when temperature moves this far (°C) from
  /// the point the current offset was set for.
  double guard_band_c = 2.0;
  /// Interpolate between table entries at most this far apart; a gap
  /// larger than this triggers a fresh empirical calibration instead.
  double max_interpolation_gap_c = 12.0;
  std::uint64_t calibration_trials = 20000;
};

class ThermalGovernor {
 public:
  /// Acquires exclusive control of `domain` for its lifetime.
  ThermalGovernor(VoltageDomain& domain, ThermalGovernorConfig config = {});
  ~ThermalGovernor();

  ThermalGovernor(const ThermalGovernor&) = delete;
  ThermalGovernor& operator=(const ThermalGovernor&) = delete;

  /// Report the current die temperature. Returns true when the offset was
  /// re-programmed (lookup, interpolation, or fresh calibration).
  bool update_temperature(double temp_c);

  /// The offset currently programmed for detection bursts.
  [[nodiscard]] double current_offset_mv() const noexcept { return current_offset_mv_; }
  /// Temperature the current offset was chosen for.
  [[nodiscard]] double calibrated_for_c() const noexcept { return calibrated_for_c_; }
  /// Exclusive-control token, to hand to StochasticHmd::attach_domain.
  [[nodiscard]] std::uint64_t token() const noexcept { return token_; }
  /// Calibration points gathered so far (temperature → offset).
  [[nodiscard]] const std::map<double, double>& table() const noexcept { return table_; }
  [[nodiscard]] std::size_t calibrations_run() const noexcept { return calibrations_; }

 private:
  /// Offset for `temp_c`: table lookup / interpolation, or fresh
  /// calibration when no nearby points exist.
  double offset_for(double temp_c);

  VoltageDomain* domain_;
  ThermalGovernorConfig config_;
  std::uint64_t token_;
  std::map<double, double> table_;
  double current_offset_mv_ = 0.0;
  double calibrated_for_c_ = -1e9;
  std::size_t calibrations_ = 0;
};

}  // namespace shmd::volt
