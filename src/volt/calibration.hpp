// CalibrationController: per-device, per-temperature undervolt calibration.
//
// §IX: "a separate calibration needs to be done for each device to
// determine the undervolting level that leads to the best
// accuracy/robustness tradeoff. Furthermore, the temperature needs to be
// considered... the voltage regulator that controls the Stochastic-HMD
// needs to dynamically adjust the undervolting level based on the current
// temperature."
//
// The controller calibrates *empirically*, the way a real deployment must:
// it programs candidate offsets on the domain, measures the observed fault
// rate on trial multiplications, and bisects to the offset whose measured
// rate hits the target. A calibration table across temperatures supports
// the dynamic adjustment the paper calls for.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "volt/voltage_domain.hpp"

namespace shmd::volt {

struct CalibrationResult {
  double offset_mv = 0.0;    ///< programmed undervolt offset (negative)
  double measured_er = 0.0;  ///< empirically observed per-op fault rate
  double target_er = 0.0;
  std::uint64_t trials = 0;  ///< multiplications run per measurement
  int iterations = 0;        ///< bisection steps taken
};

class CalibrationController {
 public:
  /// `trials` multiplications are simulated per candidate offset; more
  /// trials → tighter measurement, slower calibration.
  /// `token`: the exclusive-control token when the rail is claimed (e.g.
  /// by a ThermalGovernor); calibration re-programs the rail through it.
  explicit CalibrationController(VoltageDomain& domain, std::uint64_t trials = 20000,
                                 std::uint64_t seed = 0xCA11B8ULL,
                                 std::optional<std::uint64_t> token = std::nullopt);

  /// Measure the empirical fault rate at `offset_mv` (does not leave the
  /// domain programmed to it).
  [[nodiscard]] double measure_error_rate(double offset_mv);

  /// Find the offset achieving `target_er` within `tolerance` at the
  /// domain's current temperature. Leaves the domain at nominal (offset 0).
  [[nodiscard]] CalibrationResult calibrate(double target_er, double tolerance = 0.01);

  /// Build a temperature→offset table for `target_er` over [t_lo, t_hi]
  /// sampled every `t_step` °C. Restores the domain temperature afterwards.
  [[nodiscard]] std::map<double, CalibrationResult> calibration_table(double target_er,
                                                                      double t_lo, double t_hi,
                                                                      double t_step);

 private:
  VoltageDomain* domain_;
  std::optional<std::uint64_t> token_;
  std::uint64_t trials_;
  std::uint64_t seed_;
  std::uint64_t draws_ = 0;
};

}  // namespace shmd::volt
