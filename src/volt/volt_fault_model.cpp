#include "volt/volt_fault_model.hpp"

#include <algorithm>
#include <cmath>

#include "rng/splitmix64.hpp"

namespace shmd::volt {

namespace {
/// Smootherstep: C2-continuous ramp from 0 at s=0 to 1 at s=1.
double smootherstep(double s) noexcept {
  s = std::clamp(s, 0.0, 1.0);
  return s * s * s * (s * (6.0 * s - 15.0) + 10.0);
}

/// Inverse of smootherstep by bisection (monotone on [0,1]).
double smootherstep_inv(double y) noexcept {
  y = std::clamp(y, 0.0, 1.0);
  double lo = 0.0;
  double hi = 1.0;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (smootherstep(mid) < y) lo = mid;
    else hi = mid;
  }
  return 0.5 * (lo + hi);
}
}  // namespace

DeviceProfile DeviceProfile::sample(std::uint64_t seed) {
  shmd::rng::SplitMix64 sm(seed);
  const auto jitter = [&sm](double spread) {
    // Uniform in [-spread, +spread]; cheap triangular-free process jitter.
    const double u = static_cast<double>(sm() >> 11) * 0x1.0p-53;
    return (2.0 * u - 1.0) * spread;
  };
  DeviceProfile p;
  p.fault_onset_mv += jitter(4.0);
  p.fault_saturation_mv += jitter(4.0);
  if (p.fault_saturation_mv < p.fault_onset_mv + 20.0) {
    p.fault_saturation_mv = p.fault_onset_mv + 20.0;
  }
  p.freeze_mv = p.fault_saturation_mv + 13.0 + jitter(3.0);
  p.temp_coefficient_mv_per_c += jitter(0.1);
  return p;
}

double VoltFaultModel::onset_depth_mv(double temp_c) const noexcept {
  // Hotter than reference → onset at shallower depth (smaller mV).
  return profile_.fault_onset_mv -
         (temp_c - profile_.reference_temp_c) * profile_.temp_coefficient_mv_per_c;
}

double VoltFaultModel::saturation_depth_mv(double temp_c) const noexcept {
  return profile_.fault_saturation_mv -
         (temp_c - profile_.reference_temp_c) * profile_.temp_coefficient_mv_per_c;
}

bool VoltFaultModel::freezes(double offset_mv, double temp_c) const noexcept {
  const double depth = -offset_mv;
  const double freeze_depth = profile_.freeze_mv - (temp_c - profile_.reference_temp_c) *
                                                       profile_.temp_coefficient_mv_per_c;
  return depth >= freeze_depth;
}

double VoltFaultModel::fault_probability(double offset_mv, double temp_c) const {
  const double depth = -offset_mv;
  const double onset = onset_depth_mv(temp_c);
  const double saturation = saturation_depth_mv(temp_c);
  if (depth <= onset) return 0.0;
  if (depth >= saturation) return 1.0;
  return smootherstep((depth - onset) / (saturation - onset));
}

double VoltFaultModel::operand_fault_probability(std::uint64_t a, std::uint64_t b,
                                                 double offset_mv, double temp_c) const {
  const double depth = -offset_mv;
  const double onset = onset_depth_mv(temp_c);
  const double saturation = saturation_depth_mv(temp_c);
  // Deterministic per-operand critical depth within [onset, saturation]:
  // the same operand pair always has the same criticality (§II found fault
  // onset "depending on inputs"), but at a fixed voltage the fault event
  // itself stays probabilistic via the ramp below. The criticality is
  // distributed so that the *aggregate* fault rate over random operands
  // reproduces fault_probability(): P(critical <= d) must equal the
  // smootherstep ramp, hence the inverse-smootherstep warp of the uniform
  // hash value.
  shmd::rng::SplitMix64 h(a * 0x9E3779B97F4A7C15ULL ^ (b + 0x165667B19E3779F9ULL));
  const double u = static_cast<double>(h() >> 11) * 0x1.0p-53;
  const double critical = onset + smootherstep_inv(u) * (saturation - onset);
  // ~3 mV transition window centered on the operand's critical depth.
  constexpr double kWindowMv = 3.0;
  return smootherstep((depth - (critical - kWindowMv / 2.0)) / kWindowMv);
}

double VoltFaultModel::offset_for_error_rate(double er, double temp_c) const {
  if (er < 0.0 || er > 1.0) throw std::invalid_argument("error rate must be in [0, 1]");
  const double onset = onset_depth_mv(temp_c);
  const double saturation = saturation_depth_mv(temp_c);
  const double depth = onset + smootherstep_inv(er) * (saturation - onset);
  return -depth;
}

}  // namespace shmd::volt
