// VoltFaultModel: maps (undervolt depth, temperature, operands) to the
// per-multiplication fault probability — the physical layer the paper's
// "error rate" knob abstracts.
//
// Shape constraints encoded from §II:
//   * zero faults until an onset depth (~103 mV below nominal at 49 °C),
//   * operand-dependent onset spread across ~103–145 mV ("depending on
//     inputs"),
//   * certainty of faulting as depth approaches saturation,
//   * system freeze slightly beyond saturation,
//   * hotter silicon faults at shallower undervolt.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "volt/device_profile.hpp"

namespace shmd::volt {

/// Thrown when the core is driven below its freeze threshold — the
/// simulated analogue of the paper's "system freeze occurred".
class SystemFreezeError : public std::runtime_error {
 public:
  explicit SystemFreezeError(double voltage_v)
      : std::runtime_error("core froze: supply voltage driven below stability limit"),
        voltage_v_(voltage_v) {}
  [[nodiscard]] double voltage_v() const noexcept { return voltage_v_; }

 private:
  double voltage_v_;
};

class VoltFaultModel {
 public:
  explicit VoltFaultModel(DeviceProfile profile) : profile_(profile) {}

  [[nodiscard]] const DeviceProfile& profile() const noexcept { return profile_; }

  /// Aggregate per-multiplication fault probability at `offset_mv`
  /// (negative = undervolt) and `temp_c`, averaged over operand patterns.
  /// Smooth and monotone in undervolt depth; 0 above onset, 1 at
  /// saturation. This is the paper's er as a function of voltage.
  [[nodiscard]] double fault_probability(double offset_mv, double temp_c) const;

  /// Operand-aware probability: each operand pair has its own critical
  /// depth (hashed deterministically into [onset, saturation]); around that
  /// depth the fault probability rises over a narrow (~3 mV) window, so at
  /// a fixed voltage the faults remain stochastic run-to-run (§II).
  [[nodiscard]] double operand_fault_probability(std::uint64_t a, std::uint64_t b,
                                                 double offset_mv, double temp_c) const;

  /// Inverse of fault_probability in depth: the (negative) offset that
  /// yields error rate `er` at `temp_c`. er=0 returns the onset depth.
  [[nodiscard]] double offset_for_error_rate(double er, double temp_c) const;

  /// True when `offset_mv` would freeze the core at `temp_c`.
  [[nodiscard]] bool freezes(double offset_mv, double temp_c) const noexcept;

  /// Temperature-shifted onset depth (positive mV).
  [[nodiscard]] double onset_depth_mv(double temp_c) const noexcept;
  /// Temperature-shifted saturation depth (positive mV).
  [[nodiscard]] double saturation_depth_mv(double temp_c) const noexcept;

 private:
  DeviceProfile profile_;
};

}  // namespace shmd::volt
