#include "volt/cpu_package.hpp"

#include <cmath>
#include <stdexcept>

namespace shmd::volt {

CpuPackage::CpuPackage(unsigned cores, DeviceProfile profile, double ambient_temp_c) {
  if (cores == 0 || cores > kNumPlanes) {
    throw std::invalid_argument("CpuPackage: core count must be in [1, " +
                                std::to_string(kNumPlanes) + "]");
  }
  cores_.reserve(cores);
  for (unsigned i = 0; i < cores; ++i) {
    cores_.push_back(std::make_unique<VoltageDomain>(msr_, i, VoltFaultModel(profile),
                                                     ambient_temp_c));
  }
}

VoltageDomain& CpuPackage::core(unsigned index) {
  if (index >= cores_.size()) throw std::out_of_range("CpuPackage: core index out of range");
  return *cores_[index];
}

const VoltageDomain& CpuPackage::core(unsigned index) const {
  if (index >= cores_.size()) throw std::out_of_range("CpuPackage: core index out of range");
  return *cores_[index];
}

std::uint64_t CpuPackage::dedicate_detection_core(unsigned index) {
  if (index >= cores_.size()) throw std::out_of_range("CpuPackage: core index out of range");
  if (detection_core_ >= 0) {
    throw std::logic_error("CpuPackage: detection core already dedicated");
  }
  const std::uint64_t token = cores_[index]->acquire_exclusive();
  detection_core_ = static_cast<int>(index);
  return token;
}

unsigned CpuPackage::detection_core() const {
  if (detection_core_ < 0) throw std::logic_error("CpuPackage: no detection core dedicated");
  return static_cast<unsigned>(detection_core_);
}

bool CpuPackage::application_cores_nominal() const {
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    if (static_cast<int>(i) == detection_core_) continue;
    if (std::abs(cores_[i]->offset_mv()) > 0.5) return false;
  }
  return true;
}

}  // namespace shmd::volt
