// Emulated Model-Specific Register interface for voltage scaling.
//
// The paper (§II) scales voltage through MSR 0x150 on an Intel Broadwell
// i7-5557U: "we set the plane idx bits to 0 to scale the core's voltage
// exclusively, and used the offset bits for undervolting". We reproduce
// the real register encoding (as documented by Plundervolt and the
// linux-intel-undervolt project) so the VoltageDomain above it programs
// the "hardware" exactly the way the paper did:
//
//   bit  63     : always 1 (command valid)
//   bits 42..40 : voltage plane index (0 = core, 1 = GPU, 2 = cache, ...)
//   bit  36     : 1 = write offset, 0 = read offset
//   bit  32     : 1 (command magic)
//   bits 31..21 : signed 11-bit offset in units of 1/1.024 mV
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>

namespace shmd::volt {

/// Thrown on malformed MSR commands (bad magic, bad plane, out-of-range
/// offset) — a real CPU would #GP; we fail loudly instead.
class MsrError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Address of the voltage-offset MSR used throughout.
inline constexpr std::uint32_t kVoltagePlaneMsr = 0x150;

/// Number of voltage planes exposed (core, GPU, cache, uncore, analog I/O).
inline constexpr unsigned kNumPlanes = 5;

class MsrInterface {
 public:
  /// Execute a WRMSR. Only kVoltagePlaneMsr is modeled; write commands
  /// update the plane's offset, read commands latch the plane so the next
  /// RDMSR returns its offset.
  void wrmsr(std::uint32_t msr, std::uint64_t value);

  /// Execute a RDMSR for the previously latched plane.
  [[nodiscard]] std::uint64_t rdmsr(std::uint32_t msr) const;

  /// Current offset of `plane` in millivolts (negative = undervolt).
  [[nodiscard]] double plane_offset_mv(unsigned plane) const;

  /// Encode a WRMSR value that sets `plane`'s offset to `offset_mv`.
  [[nodiscard]] static std::uint64_t encode_write(unsigned plane, double offset_mv);
  /// Encode the RDMSR-request value for `plane`.
  [[nodiscard]] static std::uint64_t encode_read_request(unsigned plane);
  /// Decode the offset (in mV) carried by an MSR value.
  [[nodiscard]] static double decode_offset_mv(std::uint64_t value) noexcept;

 private:
  std::array<std::int32_t, kNumPlanes> offset_codes_{};  // signed 11-bit units
  unsigned latched_plane_ = 0;
};

}  // namespace shmd::volt
