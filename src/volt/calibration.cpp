#include "volt/calibration.hpp"

#include <cmath>
#include <stdexcept>

#include "rng/xoshiro256ss.hpp"

namespace shmd::volt {

CalibrationController::CalibrationController(VoltageDomain& domain, std::uint64_t trials,
                                             std::uint64_t seed,
                                             std::optional<std::uint64_t> token)
    : domain_(&domain), token_(token), trials_(trials), seed_(seed) {
  if (trials == 0) throw std::invalid_argument("CalibrationController: trials must be > 0");
}

double CalibrationController::measure_error_rate(double offset_mv) {
  // Empirical measurement: run `trials_` multiplications with random
  // operands at the candidate operating point and count faulty results,
  // exactly what a real calibration loop does with a test kernel.
  const auto& model = domain_->model();
  const double temp = domain_->temperature_c();
  if (model.freezes(offset_mv, temp)) {
    throw SystemFreezeError(model.profile().nominal_voltage_v + offset_mv / 1000.0);
  }
  rng::Xoshiro256ss gen(seed_ + (draws_++));
  std::uint64_t faults = 0;
  for (std::uint64_t i = 0; i < trials_; ++i) {
    const std::uint64_t a = gen();
    const std::uint64_t b = gen();
    const double p = model.operand_fault_probability(a, b, offset_mv, temp);
    if (gen.bernoulli(p)) ++faults;
  }
  return static_cast<double>(faults) / static_cast<double>(trials_);
}

CalibrationResult CalibrationController::calibrate(double target_er, double tolerance) {
  if (target_er < 0.0 || target_er > 1.0) {
    throw std::invalid_argument("calibrate: target error rate must be in [0, 1]");
  }
  if (tolerance <= 0.0) throw std::invalid_argument("calibrate: tolerance must be positive");

  const auto& model = domain_->model();
  const double temp = domain_->temperature_c();

  CalibrationResult result;
  result.target_er = target_er;
  result.trials = trials_;

  // Bisect in undervolt depth. Measured fault rate is monotone (up to
  // sampling noise) in depth, so plain bisection converges.
  double lo_depth = 0.0;  // no faults here
  double hi_depth = model.saturation_depth_mv(temp) + 2.0;
  double best_offset = 0.0;
  double best_er = 0.0;

  for (int iter = 0; iter < 24; ++iter) {
    const double depth = 0.5 * (lo_depth + hi_depth);
    const double measured = measure_error_rate(-depth);
    ++result.iterations;
    best_offset = -depth;
    best_er = measured;
    if (std::abs(measured - target_er) <= tolerance) break;
    if (measured < target_er) lo_depth = depth;
    else hi_depth = depth;
  }

  result.offset_mv = best_offset;
  result.measured_er = best_er;
  domain_->set_offset_mv(0.0, token_);
  return result;
}

std::map<double, CalibrationResult> CalibrationController::calibration_table(double target_er,
                                                                             double t_lo,
                                                                             double t_hi,
                                                                             double t_step) {
  if (t_step <= 0.0) throw std::invalid_argument("calibration_table: t_step must be positive");
  if (t_hi < t_lo) throw std::invalid_argument("calibration_table: t_hi must be >= t_lo");
  const double saved_temp = domain_->temperature_c();
  std::map<double, CalibrationResult> table;
  for (double t = t_lo; t <= t_hi + 1e-9; t += t_step) {
    domain_->set_temperature_c(t);
    table[t] = calibrate(target_er);
  }
  domain_->set_temperature_c(saved_temp);
  return table;
}

}  // namespace shmd::volt
