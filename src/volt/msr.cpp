#include "volt/msr.hpp"

#include <cmath>

namespace shmd::volt {

namespace {
constexpr std::uint64_t kValidBit = 1ULL << 63;
constexpr std::uint64_t kMagicBit = 1ULL << 32;
constexpr std::uint64_t kWriteBit = 1ULL << 36;
constexpr unsigned kPlaneShift = 40;
constexpr unsigned kOffsetShift = 21;
constexpr std::uint64_t kOffsetMask = 0x7FFULL;  // 11 bits
// Offset units: 1/1.024 mV per LSB.
constexpr double kUnitsPerMv = 1.024;

std::int32_t sign_extend_11(std::uint64_t code) noexcept {
  auto v = static_cast<std::int32_t>(code & kOffsetMask);
  if (v & 0x400) v -= 0x800;
  return v;
}
}  // namespace

std::uint64_t MsrInterface::encode_write(unsigned plane, double offset_mv) {
  if (plane >= kNumPlanes) throw MsrError("encode_write: invalid voltage plane");
  const double units = std::round(offset_mv * kUnitsPerMv);
  if (units < -1024.0 || units > 1023.0) {
    throw MsrError("encode_write: offset outside the 11-bit signed range");
  }
  const auto code = static_cast<std::uint64_t>(static_cast<std::int64_t>(units) & 0x7FF);
  return kValidBit | (static_cast<std::uint64_t>(plane) << kPlaneShift) | kWriteBit | kMagicBit |
         (code << kOffsetShift);
}

std::uint64_t MsrInterface::encode_read_request(unsigned plane) {
  if (plane >= kNumPlanes) throw MsrError("encode_read_request: invalid voltage plane");
  return kValidBit | (static_cast<std::uint64_t>(plane) << kPlaneShift) | kMagicBit;
}

double MsrInterface::decode_offset_mv(std::uint64_t value) noexcept {
  const std::int32_t code = sign_extend_11(value >> kOffsetShift);
  return static_cast<double>(code) / kUnitsPerMv;
}

void MsrInterface::wrmsr(std::uint32_t msr, std::uint64_t value) {
  if (msr != kVoltagePlaneMsr) throw MsrError("wrmsr: unsupported MSR address");
  if (!(value & kValidBit) || !(value & kMagicBit)) throw MsrError("wrmsr: bad command magic");
  const auto plane = static_cast<unsigned>((value >> kPlaneShift) & 0x7);
  if (plane >= kNumPlanes) throw MsrError("wrmsr: invalid voltage plane");
  if (value & kWriteBit) {
    offset_codes_[plane] = sign_extend_11(value >> kOffsetShift);
  } else {
    latched_plane_ = plane;
  }
}

std::uint64_t MsrInterface::rdmsr(std::uint32_t msr) const {
  if (msr != kVoltagePlaneMsr) throw MsrError("rdmsr: unsupported MSR address");
  const auto code =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(offset_codes_[latched_plane_]) & 0x7FF);
  return code << kOffsetShift;
}

double MsrInterface::plane_offset_mv(unsigned plane) const {
  if (plane >= kNumPlanes) throw MsrError("plane_offset_mv: invalid voltage plane");
  return static_cast<double>(offset_codes_[plane]) / kUnitsPerMv;
}

}  // namespace shmd::volt
