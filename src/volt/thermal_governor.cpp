#include "volt/thermal_governor.hpp"

#include <cmath>

namespace shmd::volt {

ThermalGovernor::ThermalGovernor(VoltageDomain& domain, ThermalGovernorConfig config)
    : domain_(&domain), config_(config), token_(domain.acquire_exclusive()) {}

ThermalGovernor::~ThermalGovernor() {
  // Park the rail at nominal and hand control back.
  domain_->set_offset_mv(0.0, token_);
  domain_->release_exclusive(token_);
}

double ThermalGovernor::offset_for(double temp_c) {
  // Nearest calibrated neighbours.
  const auto above = table_.lower_bound(temp_c);
  const bool have_above = above != table_.end();
  const bool have_below = above != table_.begin();

  if (have_above && std::abs(above->first - temp_c) < 1e-9) return above->second;

  if (have_above && have_below) {
    const auto below = std::prev(above);
    if (above->first - below->first <= config_.max_interpolation_gap_c) {
      const double t = (temp_c - below->first) / (above->first - below->first);
      return below->second + t * (above->second - below->second);
    }
  }

  // No nearby points: run an empirical calibration at this temperature.
  const double saved_temp = domain_->temperature_c();
  domain_->set_temperature_c(temp_c);
  CalibrationController calibration(*domain_, config_.calibration_trials,
                                    0xCA11B8ULL + static_cast<std::uint64_t>(calibrations_),
                                    token_);
  const CalibrationResult result = calibration.calibrate(config_.target_error_rate);
  domain_->set_temperature_c(saved_temp);
  ++calibrations_;
  table_[temp_c] = result.offset_mv;
  return result.offset_mv;
}

bool ThermalGovernor::update_temperature(double temp_c) {
  domain_->set_temperature_c(temp_c);
  if (std::abs(temp_c - calibrated_for_c_) <= config_.guard_band_c) return false;
  current_offset_mv_ = offset_for(temp_c);
  calibrated_for_c_ = temp_c;
  return true;
}

}  // namespace shmd::volt
