#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace shmd::net {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

NetClient::~NetClient() { close(); }

void NetClient::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void NetClient::connect(const util::Endpoint& endpoint) {
  if (fd_ >= 0) throw std::runtime_error("NetClient::connect: already connected");
  int fd = -1;
  if (endpoint.kind == util::Endpoint::Kind::kUnix) {
    sockaddr_un sun{};
    if (endpoint.path.size() >= sizeof(sun.sun_path)) {
      throw std::runtime_error("NetClient: unix socket path too long: " + endpoint.path);
    }
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error(errno_text("NetClient: socket(AF_UNIX)"));
    sun.sun_family = AF_UNIX;
    std::memcpy(sun.sun_path, endpoint.path.c_str(), endpoint.path.size());
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&sun), sizeof(sun)) != 0) {
      const std::string msg = errno_text("NetClient: connect()");
      ::close(fd);
      throw std::runtime_error(msg + " to " + endpoint.to_string());
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error(errno_text("NetClient: socket(AF_INET)"));
    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_port = htons(endpoint.port);
    const std::string host =
        (endpoint.host.empty() || endpoint.host == "*" || endpoint.host == "localhost")
            ? "127.0.0.1"
            : endpoint.host;
    if (::inet_pton(AF_INET, host.c_str(), &sin.sin_addr) != 1) {
      ::close(fd);
      throw std::runtime_error("NetClient: cannot resolve host '" + endpoint.host +
                               "' (numeric IPv4 or \"localhost\" only — no DNS)");
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&sin), sizeof(sin)) != 0) {
      const std::string msg = errno_text("NetClient: connect()");
      ::close(fd);
      throw std::runtime_error(msg + " to " + endpoint.to_string());
    }
    const int one = 1;  // request/reply traffic wants latency, not batching
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  fd_ = fd;
  apply_recv_deadline();
}

void NetClient::set_recv_deadline(std::chrono::milliseconds timeout) {
  if (timeout.count() < 0) {
    throw std::invalid_argument("NetClient::set_recv_deadline: negative timeout");
  }
  recv_deadline_ = timeout;
  if (fd_ >= 0) apply_recv_deadline();
}

void NetClient::apply_recv_deadline() {
  // SO_RCVTIMEO: the kernel bounds each blocking recv(); an expiry
  // surfaces as EAGAIN, which read_frame() turns into
  // RecvDeadlineExpired. A zero timeval restores wait-forever.
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(recv_deadline_.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((recv_deadline_.count() % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    throw std::runtime_error(errno_text("NetClient: setsockopt(SO_RCVTIMEO)"));
  }
}

void NetClient::send_frame(FrameType type, std::uint64_t request_id,
                           std::vector<std::uint8_t> payload) {
  if (fd_ < 0) throw std::runtime_error("NetClient: not connected");
  Frame frame;
  frame.type = type;
  frame.request_id = request_id;
  frame.payload = std::move(payload);
  std::vector<std::uint8_t> wire;
  encode_frame(frame, wire);
  std::size_t at = 0;
  while (at < wire.size()) {
    const ssize_t n = ::send(fd_, wire.data() + at, wire.size() - at, MSG_NOSIGNAL);
    if (n > 0) {
      at += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw std::runtime_error(errno_text("NetClient: send()"));
  }
}

Frame NetClient::read_frame() {
  if (fd_ < 0) throw std::runtime_error("NetClient: not connected");
  while (true) {
    if (std::optional<Frame> frame = decoder_.next()) return std::move(*frame);
    if (decoder_.failed()) {
      throw std::runtime_error("NetClient: protocol error from server: " + decoder_.error());
    }
    std::uint8_t buf[64 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) throw std::runtime_error("NetClient: connection closed by server");
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) throw RecvDeadlineExpired();
      throw std::runtime_error(errno_text("NetClient: recv()"));
    }
    decoder_.feed(std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
  }
}

Reply NetClient::to_reply(Frame frame) {
  Reply reply;
  reply.request_id = frame.request_id;
  reply.type = frame.type;
  if (frame.type == FrameType::kScoreResult) {
    reply.result = decode_score_result(frame.payload);
    if (!reply.result.has_value()) {
      throw std::runtime_error("NetClient: malformed ScoreResult payload");
    }
  } else if (frame.type == FrameType::kVerdictResult) {
    reply.verdict = decode_verdict_result(frame.payload);
    if (!reply.verdict.has_value()) {
      throw std::runtime_error("NetClient: malformed VerdictResult payload");
    }
  } else if (frame.type == FrameType::kError) {
    reply.error = decode_error(frame.payload);
    if (!reply.error.has_value()) {
      throw std::runtime_error("NetClient: malformed Error payload");
    }
  }
  reply.payload = std::move(frame.payload);
  return reply;
}

Reply NetClient::score(const ScoreRequest& request) {
  const std::uint64_t id = send_score(request);
  Reply reply = recv_reply();
  if (reply.request_id != id) {
    throw std::runtime_error("NetClient: out-of-order reply in synchronous mode");
  }
  return reply;
}

bool NetClient::ping() {
  const std::uint64_t id = next_id_++;
  const std::vector<std::uint8_t> probe = {0x5A, 0xA5};
  send_frame(FrameType::kPing, id, probe);
  const Reply reply = to_reply(read_frame());
  return reply.type == FrameType::kPong && reply.request_id == id && reply.payload == probe;
}

std::optional<serve::ServiceStatsSnapshot> NetClient::stats() {
  const std::uint64_t id = next_id_++;
  send_frame(FrameType::kStats, id, {});
  const Reply reply = to_reply(read_frame());
  if (reply.type != FrameType::kStatsResult || reply.request_id != id) return std::nullopt;
  return serve::deserialize_snapshot(reply.payload);
}

std::uint64_t NetClient::send_score(const ScoreRequest& request) {
  const std::uint64_t id = next_id_++;
  send_frame(FrameType::kScore, id, encode_score_request(request));
  return id;
}

std::uint64_t NetClient::send_verdict(const ScoreRequest& request) {
  const std::uint64_t id = next_id_++;
  send_frame(FrameType::kVerdict, id, encode_score_request(request));
  return id;
}

Reply NetClient::recv_reply() { return to_reply(read_frame()); }

}  // namespace shmd::net
