// NetClient: blocking client for the Stochastic-HMD wire protocol.
//
// Two usage modes, both over one connection:
//
//   * synchronous — score()/ping()/stats() each write a frame and block
//     for its reply; the simplest integration for monitors that score one
//     program at a time.
//   * pipelined — send_score() stamps and writes a request without
//     waiting; recv_reply() blocks for the next reply frame and reports
//     which request id it answers. Many requests ride in flight at once,
//     which is what actually fills the server's worker pool from a single
//     connection.
//
// Threading: the client itself is lock-free and therefore single-threaded
// per direction. One thread may use the sync API; alternatively exactly
// one sender thread may call send_score()/try-send while exactly one
// reader thread calls recv_reply() — the two directions share only the
// socket fd, which is full-duplex. Do not mix the sync calls with a
// concurrent reader thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "serve/service_stats.hpp"
#include "util/cli.hpp"

namespace shmd::net {

/// One decoded reply frame. Exactly one of `result` / `error` is set for
/// score replies; pong and stats replies carry only the raw payload.
struct Reply {
  std::uint64_t request_id = 0;
  FrameType type = FrameType::kPong;
  std::optional<ScoreResult> result;          ///< set when type == kScoreResult
  std::optional<VerdictResult> verdict;       ///< set when type == kVerdictResult
  std::optional<ErrorBody> error;             ///< set when type == kError (e.g. kShed)
  std::vector<std::uint8_t> payload;          ///< raw payload (kPong / kStatsResult)
};

/// Thrown when a receive deadline (set_recv_deadline) expires with no
/// bytes from the server — the dead-daemon guard. The connection is NOT
/// torn down: a caller that wants to keep waiting may simply retry.
class RecvDeadlineExpired : public std::runtime_error {
 public:
  RecvDeadlineExpired()
      : std::runtime_error("NetClient: receive deadline expired (server unresponsive)") {}
};

class NetClient {
 public:
  NetClient() = default;
  ~NetClient();  ///< close()

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Connect to a TCP host:port or Unix path. Throws std::runtime_error
  /// on failure (refused, unresolvable host, missing socket file).
  void connect(const util::Endpoint& endpoint);
  void close() noexcept;
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Bound every blocking receive: a read_frame() that sees no bytes for
  /// `timeout` throws RecvDeadlineExpired instead of hanging forever on a
  /// dead or half-open server. zero() disables (the default: wait
  /// forever, the pre-deadline behavior). Applies to the current
  /// connection immediately and to any future connect().
  void set_recv_deadline(std::chrono::milliseconds timeout);
  [[nodiscard]] std::chrono::milliseconds recv_deadline() const noexcept {
    return recv_deadline_;
  }

  // -- synchronous API -----------------------------------------------------

  /// Send one score request and block for its reply (a ScoreResult, or an
  /// Error such as kShed under overload). Throws on transport failure.
  Reply score(const ScoreRequest& request);

  /// Liveness round-trip; false only by throwing never — a lost
  /// connection throws. Returns true when the pong echoed correctly.
  bool ping();

  /// Fetch and decode the server's ServiceStatsSnapshot.
  [[nodiscard]] std::optional<serve::ServiceStatsSnapshot> stats();

  // -- pipelined API -------------------------------------------------------

  /// Write one score request without waiting; returns its request id.
  /// Blocks only if the socket's send buffer is full (the server applies
  /// read-pause backpressure under overload).
  std::uint64_t send_score(const ScoreRequest& request);

  /// Decision-only sibling of send_score(): same request payload on a
  /// kVerdict frame; the server answers with kVerdictResult (decisions,
  /// no raw scores). This is the only scoring call a --no-raw-scores
  /// server accepts from untrusted endpoints.
  std::uint64_t send_verdict(const ScoreRequest& request);

  /// Block for the next reply frame, in server completion order.
  Reply recv_reply();

 private:
  void send_frame(FrameType type, std::uint64_t request_id,
                  std::vector<std::uint8_t> payload);
  void apply_recv_deadline();
  Frame read_frame();  ///< blocking; throws on EOF / garbage / deadline
  static Reply to_reply(Frame frame);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  std::chrono::milliseconds recv_deadline_{0};  ///< 0 = wait forever
  FrameDecoder decoder_;
};

}  // namespace shmd::net
