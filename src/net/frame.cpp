#include "net/frame.hpp"

#include <bit>
#include <cstring>
#include <utility>

namespace shmd::net {

namespace {

// Little-endian primitives. Writers append to a byte vector; the reader
// walks a span with explicit bounds checks and a sticky ok flag, so a
// truncated or hostile payload yields nullopt instead of UB.

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() { return take(1) ? bytes_[at_ - 1] : 0; }

  std::uint16_t u16() {
    if (!take(2)) return 0;
    return static_cast<std::uint16_t>(std::uint16_t{bytes_[at_ - 2]} |
                                      (std::uint16_t{bytes_[at_ - 1]} << 8));
  }

  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{bytes_[at_ - 4 + i]} << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{bytes_[at_ - 8 + i]} << (8 * i);
    return v;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  std::span<const std::uint8_t> raw(std::size_t n) {
    if (!take(n)) return {};
    return bytes_.subspan(at_ - n, n);
  }

  /// True iff every read so far was in bounds AND the payload is fully
  /// consumed — trailing garbage is as malformed as truncation.
  [[nodiscard]] bool exhausted() const noexcept { return ok_ && at_ == bytes_.size(); }
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return bytes_.size() - at_; }

 private:
  bool take(std::size_t n) {
    if (!ok_ || bytes_.size() - at_ < n) {
      ok_ = false;
      return false;
    }
    at_ += n;
    return true;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t at_ = 0;
  bool ok_ = true;
};

std::uint32_t read_u32_at(const std::vector<std::uint8_t>& buffer, std::size_t offset) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{buffer[offset + i]} << (8 * i);
  return v;
}

std::uint64_t read_u64_at(const std::vector<std::uint8_t>& buffer, std::size_t offset) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{buffer[offset + i]} << (8 * i);
  return v;
}

bool known_type(std::uint8_t type) {
  return type <= static_cast<std::uint8_t>(FrameType::kVerdictResult);
}

}  // namespace

void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out) {
  out.reserve(out.size() + kHeaderSize + frame.payload.size());
  put_u32(out, kMagic);
  out.push_back(kProtocolVersion);
  out.push_back(static_cast<std::uint8_t>(frame.type));
  put_u16(out, 0);  // reserved
  put_u64(out, frame.request_id);
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
}

std::vector<std::uint8_t> encode_score_request(const ScoreRequest& req) {
  std::vector<std::uint8_t> out;
  out.reserve(16 + 8 * req.width * req.windows.size());
  out.push_back(req.view);
  out.push_back(0);  // reserved
  put_u16(out, 0);   // reserved
  put_u32(out, req.period);
  put_u32(out, req.deadline_us);
  put_u32(out, static_cast<std::uint32_t>(req.windows.size()));
  put_u32(out, static_cast<std::uint32_t>(req.width));
  for (const std::vector<double>& window : req.windows) {
    for (const double x : window) put_f64(out, x);
  }
  return out;
}

std::optional<ScoreRequest> decode_score_request(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  ScoreRequest req;
  req.view = r.u8();
  (void)r.u8();
  (void)r.u16();
  req.period = r.u32();
  req.deadline_us = r.u32();
  const std::uint32_t n_windows = r.u32();
  const std::uint32_t width = r.u32();
  req.width = width;
  if (!r.ok()) return std::nullopt;
  // The declared matrix must match the remaining bytes exactly; checking
  // before allocating keeps a hostile header from reserving gigabytes.
  // Division-shaped on purpose: n_windows * width * 8 can wrap mod 2^64
  // (e.g. n_windows=2^31, width=2^30 gives 0), so a product comparison
  // would wave exactly the allocation bomb through that it exists to stop.
  const std::uint64_t window_bytes = std::uint64_t{width} * 8;  // <= 2^35, cannot wrap
  if (width == 0 || n_windows == 0 || r.remaining() % window_bytes != 0 ||
      r.remaining() / window_bytes != n_windows) {
    return std::nullopt;
  }
  req.windows.assign(n_windows, std::vector<double>(width));
  for (std::vector<double>& window : req.windows) {
    for (double& x : window) x = r.f64();
  }
  if (!r.exhausted()) return std::nullopt;
  return req;
}

std::vector<std::uint8_t> encode_score_result(const ScoreResult& result) {
  std::vector<std::uint8_t> out;
  out.reserve(24 + 8 * result.scores.size());
  out.push_back(result.outcome);
  out.push_back(result.verdict ? 1 : 0);
  put_u16(out, 0);  // reserved
  put_u64(out, result.epoch_id);
  put_u64(out, result.latency_ns);
  put_u32(out, static_cast<std::uint32_t>(result.scores.size()));
  for (const double s : result.scores) put_f64(out, s);
  return out;
}

std::optional<ScoreResult> decode_score_result(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  ScoreResult result;
  result.outcome = r.u8();
  result.verdict = r.u8() != 0;
  (void)r.u16();
  result.epoch_id = r.u64();
  result.latency_ns = r.u64();
  const std::uint32_t n_scores = r.u32();
  if (!r.ok() || r.remaining() != std::uint64_t{n_scores} * 8) return std::nullopt;
  result.scores.resize(n_scores);
  for (double& s : result.scores) s = r.f64();
  if (!r.exhausted()) return std::nullopt;
  return result;
}

std::vector<std::uint8_t> encode_verdict_result(const VerdictResult& result) {
  std::vector<std::uint8_t> out;
  out.reserve(24 + (result.decisions.size() + 7) / 8);
  out.push_back(result.outcome);
  out.push_back(result.verdict ? 1 : 0);
  put_u16(out, 0);  // reserved
  put_u64(out, result.epoch_id);
  put_u64(out, result.latency_ns);
  put_u32(out, static_cast<std::uint32_t>(result.decisions.size()));
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < result.decisions.size(); ++i) {
    if (result.decisions[i]) acc |= static_cast<std::uint8_t>(1u << (i % 8));
    if (i % 8 == 7) {
      out.push_back(acc);
      acc = 0;
    }
  }
  if (result.decisions.size() % 8 != 0) out.push_back(acc);
  return out;
}

std::optional<VerdictResult> decode_verdict_result(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  VerdictResult result;
  result.outcome = r.u8();
  result.verdict = r.u8() != 0;
  (void)r.u16();
  result.epoch_id = r.u64();
  result.latency_ns = r.u64();
  const std::uint32_t n = r.u32();
  // Exact-length check before allocating (same discipline as the score
  // codecs); (n + 7) / 8 cannot wrap — n is 32-bit.
  if (!r.ok() || r.remaining() != (std::uint64_t{n} + 7) / 8) return std::nullopt;
  const std::span<const std::uint8_t> bits = r.raw(r.remaining());
  if (!r.exhausted()) return std::nullopt;
  result.decisions.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    result.decisions[i] = (bits[i / 8] >> (i % 8)) & 1u;
  }
  // Pad bits in the final byte must be zero: a sloppy or hostile encoder
  // does not get a free side channel.
  if (n % 8 != 0 && !bits.empty() &&
      (bits.back() >> (n % 8)) != 0) {
    return std::nullopt;
  }
  return result;
}

std::vector<std::uint8_t> encode_error(const ErrorBody& error) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + error.message.size());
  put_u16(out, static_cast<std::uint16_t>(error.code));
  put_u16(out, static_cast<std::uint16_t>(error.message.size()));
  for (const char c : error.message) out.push_back(static_cast<std::uint8_t>(c));
  return out;
}

std::optional<ErrorBody> decode_error(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  ErrorBody error;
  error.code = static_cast<ErrorCode>(r.u16());
  const std::uint16_t len = r.u16();
  const std::span<const std::uint8_t> text = r.raw(len);
  if (!r.exhausted()) return std::nullopt;
  error.message.assign(text.begin(), text.end());
  return error;
}

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  if (failed_) return;  // sticky: a broken stream stays broken
  // Compact the parsed prefix before growing — the buffer never holds
  // more than one partial frame plus whatever feed() just delivered.
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<Frame> FrameDecoder::next() {
  if (failed_ || buffer_.size() - consumed_ < kHeaderSize) return std::nullopt;
  const std::size_t base = consumed_;
  if (read_u32_at(buffer_, base) != kMagic) {
    fail("bad magic (not a Stochastic-HMD frame stream)");
    return std::nullopt;
  }
  if (buffer_[base + 4] != kProtocolVersion) {
    fail("unsupported protocol version " + std::to_string(buffer_[base + 4]));
    return std::nullopt;
  }
  if (!known_type(buffer_[base + 5])) {
    fail("unknown frame type " + std::to_string(buffer_[base + 5]));
    return std::nullopt;
  }
  if (buffer_[base + 6] != 0 || buffer_[base + 7] != 0) {
    fail("nonzero reserved header bytes");
    return std::nullopt;
  }
  const std::uint32_t payload_len = read_u32_at(buffer_, base + 16);
  if (payload_len > max_payload_) {
    fail("payload length " + std::to_string(payload_len) + " exceeds limit " +
         std::to_string(max_payload_));
    return std::nullopt;
  }
  if (buffer_.size() - base < kHeaderSize + payload_len) return std::nullopt;  // need more
  Frame frame;
  frame.type = static_cast<FrameType>(buffer_[base + 5]);
  frame.request_id = read_u64_at(buffer_, base + 8);
  frame.payload.assign(buffer_.begin() + static_cast<std::ptrdiff_t>(base + kHeaderSize),
                       buffer_.begin() +
                           static_cast<std::ptrdiff_t>(base + kHeaderSize + payload_len));
  consumed_ = base + kHeaderSize + payload_len;
  return frame;
}

void FrameDecoder::fail(std::string reason) {
  failed_ = true;
  error_ = std::move(reason);
  buffer_.clear();
  consumed_ = 0;
}

}  // namespace shmd::net
