#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "admit/token_bucket.hpp"
#include "trace/features.hpp"

namespace shmd::net {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error(errno_text("fcntl(O_NONBLOCK)"));
  }
}

in_addr_t resolve_ipv4(const std::string& host) {
  if (host.empty() || host == "*") return htonl(INADDR_ANY);
  if (host == "localhost") return htonl(INADDR_LOOPBACK);
  in_addr addr{};
  if (::inet_pton(AF_INET, host.c_str(), &addr) == 1) return addr.s_addr;
  throw std::runtime_error("NetServer: cannot resolve host '" + host +
                           "' (numeric IPv4, \"localhost\", or \"*\" only — no DNS)");
}

}  // namespace

// -- Poller -----------------------------------------------------------------

/// Readiness multiplexer: epoll where available, poll() everywhere. Both
/// backends present identical semantics so the reactor is backend-blind
/// and the test suite can force the fallback (NetServerConfig::force_poll).
class NetServer::Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool hangup = false;
  };

  explicit Poller(bool force_poll) {
#ifdef __linux__
    if (!force_poll) epfd_ = ::epoll_create1(EPOLL_CLOEXEC);  // < 0 => poll() fallback
#else
    (void)force_poll;
#endif
  }

  ~Poller() {
    if (epfd_ >= 0) ::close(epfd_);
  }

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  /// Add-or-update interest for `fd`. Returns false if the kernel refused
  /// the registration (e.g. EPOLL_CTL_ADD hitting the epoll watch limit):
  /// an unregistered fd would never be polled again, so the caller must
  /// close it rather than leave the connection hanging silently.
  [[nodiscard]] bool set(int fd, bool read, bool write) {
    const auto it = interest_.find(fd);
#ifdef __linux__
    if (epfd_ >= 0) {
      epoll_event ev{};
      ev.events = (read ? static_cast<std::uint32_t>(EPOLLIN) : 0u) |
                  (write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
      ev.data.fd = fd;
      if (::epoll_ctl(epfd_, it == interest_.end() ? EPOLL_CTL_ADD : EPOLL_CTL_MOD, fd,
                      &ev) != 0) {
        return false;
      }
    }
#endif
    const short mask = static_cast<short>((read ? 1 : 0) | (write ? 2 : 0));
    if (it == interest_.end()) {
      interest_.emplace(fd, mask);
    } else {
      it->second = mask;
    }
    return true;
  }

  void remove(int fd) {
#ifdef __linux__
    if (epfd_ >= 0) ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
#endif
    interest_.erase(fd);
  }

  const std::vector<Event>& wait(int timeout_ms) {
    events_.clear();
#ifdef __linux__
    if (epfd_ >= 0) {
      epoll_event raw[64];
      const int n = ::epoll_wait(epfd_, raw, 64, timeout_ms);
      for (int i = 0; i < n; ++i) {
        Event ev;
        ev.fd = raw[i].data.fd;
        ev.readable = (raw[i].events & EPOLLIN) != 0;
        ev.writable = (raw[i].events & EPOLLOUT) != 0;
        ev.hangup = (raw[i].events & (EPOLLHUP | EPOLLERR)) != 0;
        events_.push_back(ev);
      }
      return events_;
    }
#endif
    pollfds_.clear();
    for (const auto& [fd, mask] : interest_) {
      pollfd p{};
      p.fd = fd;
      p.events = static_cast<short>(((mask & 1) != 0 ? POLLIN : 0) |
                                    ((mask & 2) != 0 ? POLLOUT : 0));
      pollfds_.push_back(p);
    }
    const int n = ::poll(pollfds_.data(), pollfds_.size(), timeout_ms);
    if (n > 0) {
      for (const pollfd& p : pollfds_) {
        if (p.revents == 0) continue;
        Event ev;
        ev.fd = p.fd;
        ev.readable = (p.revents & POLLIN) != 0;
        ev.writable = (p.revents & POLLOUT) != 0;
        ev.hangup = (p.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
        events_.push_back(ev);
      }
    }
    return events_;
  }

 private:
  int epfd_ = -1;
  std::unordered_map<int, short> interest_;
  std::vector<Event> events_;
  std::vector<pollfd> pollfds_;
};

// -- reactor-owned per-connection / per-request state -----------------------

struct NetServer::Connection {
  explicit Connection(const NetServerConfig& config)
      : decoder(config.max_payload), bucket(config.throttle_rps, config.throttle_burst) {}

  std::uint64_t id = 0;
  int fd = -1;
  FrameDecoder decoder;
  /// Fair-share limiter: one token per scoring request. Reactor-owned
  /// like everything else here, so no synchronization.
  admit::TokenBucket bucket;
  std::uint64_t throttled = 0;    ///< kThrottled frames sent on this connection
  std::vector<std::uint8_t> out;  ///< encoded frames awaiting the socket
  std::size_t out_at = 0;         ///< written prefix of `out`
  bool reads_paused = false;      ///< backpressure: write buffer over limit
  bool close_after_flush = false;  ///< protocol error: drain out, then die
  bool dead = false;               ///< fatal I/O error or peer EOF observed
  bool trusted = true;             ///< inherited from the accepting listener
};

/// One in-flight score: owns the ticket and the feature set for exactly as
/// long as the service contract requires (submission -> completion). Heap-
/// allocated and never moved, because ScoreTicket is address-stable by
/// design. If the client disconnects mid-score, conn_id is zeroed and the
/// completion is discarded on arrival — the ticket still completes, so the
/// service's accounting stays exact.
struct NetServer::Pending {
  NetServer* server = nullptr;
  std::uint64_t key = 0;      ///< reactor-assigned; mailbox token
  std::uint64_t conn_id = 0;  ///< 0 = orphaned (connection died first)
  std::uint64_t request_id = 0;
  bool decision_only = false;  ///< kVerdict request: reply without scores
  trace::FeatureSet features;
  serve::ScoreTicket ticket;
};

// -- lifecycle --------------------------------------------------------------

NetServer::NetServer(serve::ScoringService& service, NetServerConfig config)
    : service_(service),
      config_(config),
      poller_(std::make_unique<Poller>(config.force_poll)) {
  if (::pipe(wake_fds_) != 0) throw std::runtime_error(errno_text("NetServer: pipe()"));
  set_nonblocking(wake_fds_[0]);
  set_nonblocking(wake_fds_[1]);
  // Reserved fd released to accept-and-close under EMFILE/ENFILE (see
  // handle_accept); best-effort — -1 just disables the shed path.
  spare_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
}

NetServer::~NetServer() {
  stop();
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
  if (spare_fd_ >= 0) ::close(spare_fd_);
}

util::Endpoint NetServer::add_listener(const util::Endpoint& endpoint, bool trusted) {
  if (started_) throw std::runtime_error("NetServer::add_listener: server already started");
  int fd = -1;
  util::Endpoint resolved = endpoint;
  if (endpoint.kind == util::Endpoint::Kind::kUnix) {
    sockaddr_un sun{};
    if (endpoint.path.size() >= sizeof(sun.sun_path)) {
      throw std::runtime_error("NetServer: unix socket path too long: " + endpoint.path);
    }
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error(errno_text("NetServer: socket(AF_UNIX)"));
    ::unlink(endpoint.path.c_str());  // stale socket from a crashed predecessor
    sun.sun_family = AF_UNIX;
    std::memcpy(sun.sun_path, endpoint.path.c_str(), endpoint.path.size());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&sun), sizeof(sun)) != 0) {
      const std::string msg = errno_text("NetServer: bind()");
      ::close(fd);
      throw std::runtime_error(msg + " on " + endpoint.to_string());
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error(errno_text("NetServer: socket(AF_INET)"));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_addr.s_addr = resolve_ipv4(endpoint.host);
    sin.sin_port = htons(endpoint.port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&sin), sizeof(sin)) != 0) {
      const std::string msg = errno_text("NetServer: bind()");
      ::close(fd);
      throw std::runtime_error(msg + " on " + endpoint.to_string());
    }
    if (endpoint.port == 0) {  // report the kernel-assigned ephemeral port
      sockaddr_in bound{};
      socklen_t len = sizeof(bound);
      if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
        resolved.port = ntohs(bound.sin_port);
      }
    }
  }
  if (::listen(fd, 128) != 0) {
    const std::string msg = errno_text("NetServer: listen()");
    ::close(fd);
    throw std::runtime_error(msg + " on " + endpoint.to_string());
  }
  set_nonblocking(fd);
  listeners_.push_back(Listener{fd, resolved, trusted});
  return resolved;
}

void NetServer::start() {
  if (started_) throw std::runtime_error("NetServer::start: already started");
  if (listeners_.empty()) {
    throw std::runtime_error("NetServer::start: no listeners (call add_listener first)");
  }
  if (!poller_->set(wake_fds_[0], /*read=*/true, /*write=*/false)) {
    throw std::runtime_error("NetServer::start: cannot register wake pipe with poller");
  }
  for (const Listener& listener : listeners_) {
    if (!poller_->set(listener.fd, /*read=*/true, /*write=*/false)) {
      throw std::runtime_error("NetServer::start: cannot register listener with poller");
    }
  }
  started_ = true;
  reactor_ = std::thread([this] { event_loop(); });
}

void NetServer::stop() {
  stop_requested_.store(true, std::memory_order_release);
  if (reactor_.joinable()) {
    wake();
    reactor_.join();
  }
  // A completing worker may still be inside score_complete_hook (between
  // its mailbox push and its last read of `this`); outlive it.
  while (hooks_in_flight_.load(std::memory_order_acquire) != 0) std::this_thread::yield();
  for (Listener& listener : listeners_) {
    if (listener.fd >= 0) {  // reactor never started; close here instead
      ::close(listener.fd);
      listener.fd = -1;
    }
    if (listener.endpoint.kind == util::Endpoint::Kind::kUnix) {
      ::unlink(listener.endpoint.path.c_str());
    }
  }
}

NetServerStats NetServer::stats() const {
  NetServerStats s;
  s.accepted_connections = stats_.accepted_connections.load(std::memory_order_relaxed);
  s.closed_connections = stats_.closed_connections.load(std::memory_order_relaxed);
  s.frames_in = stats_.frames_in.load(std::memory_order_relaxed);
  s.frames_out = stats_.frames_out.load(std::memory_order_relaxed);
  s.scores_submitted = stats_.scores_submitted.load(std::memory_order_relaxed);
  s.shed_responses = stats_.shed_responses.load(std::memory_order_relaxed);
  s.protocol_errors = stats_.protocol_errors.load(std::memory_order_relaxed);
  s.reads_paused = stats_.reads_paused.load(std::memory_order_relaxed);
  s.out_buffer_peak = stats_.out_buffer_peak.load(std::memory_order_relaxed);
  s.accept_overflow = stats_.accept_overflow.load(std::memory_order_relaxed);
  s.throttled_responses = stats_.throttled_responses.load(std::memory_order_relaxed);
  s.rejected_responses = stats_.rejected_responses.load(std::memory_order_relaxed);
  s.throttled_conn_peak = stats_.throttled_conn_peak.load(std::memory_order_relaxed);
  return s;
}

// -- reactor ----------------------------------------------------------------

void NetServer::wake() noexcept {
  const char byte = 1;
  // EAGAIN means a wake is already pending — exactly what we want.
  (void)!::write(wake_fds_[1], &byte, 1);
}

NetServer::Connection* NetServer::find_conn(std::uint64_t conn_id) noexcept {
  const auto it = conns_.find(conn_id);
  return it == conns_.end() ? nullptr : it->second.get();
}

void NetServer::event_loop() {
  bool listeners_closed = false;
  while (true) {
    const bool stopping = stop_requested_.load(std::memory_order_acquire);
    if (stopping && !listeners_closed) {
      for (Listener& listener : listeners_) {
        if (listener.fd >= 0) {
          poller_->remove(listener.fd);
          ::close(listener.fd);
          listener.fd = -1;
        }
      }
      listeners_closed = true;
    }
    drain_completions();
    // Every accepted ticket is completed by the service (drain semantics),
    // so this empties and the loop exits without dropping a reply.
    if (stopping && pending_.empty()) break;

    const auto& events = poller_->wait(stopping ? 20 : 200);
    for (const Poller::Event& ev : events) {
      if (ev.fd == wake_fds_[0]) {
        char buf[256];
        while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      bool is_listener = false;
      for (const Listener& listener : listeners_) {
        if (listener.fd == ev.fd) {
          is_listener = true;
          break;
        }
      }
      if (is_listener) {
        handle_accept(ev.fd);
        continue;
      }
      const auto it = conn_by_fd_.find(ev.fd);
      if (it == conn_by_fd_.end()) continue;  // closed earlier in this batch
      const std::uint64_t cid = it->second;
      if (ev.writable) {
        if (Connection* conn = find_conn(cid); conn != nullptr && !flush(*conn)) {
          close_connection(cid);
        }
      }
      if (ev.readable) {
        if (Connection* conn = find_conn(cid)) handle_readable(*conn);
      }
      if (ev.hangup && find_conn(cid) != nullptr) close_connection(cid);
    }
  }
  // Teardown: best-effort final flush, then close everything.
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (const std::uint64_t id : ids) {
    if (Connection* conn = find_conn(id)) (void)flush(*conn);
    close_connection(id);
  }
}

void NetServer::handle_accept(int listen_fd) {
  bool trusted = true;
  for (const Listener& listener : listeners_) {
    if (listener.fd == listen_fd) {
      trusted = listener.trusted;
      break;
    }
  }
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // fd exhaustion: the pending connection stays in the backlog, so
        // with a level-triggered poller the listener stays readable and
        // the reactor would busy-spin. Release the reserved spare fd,
        // accept-and-close the head of the backlog, then re-reserve.
        if (spare_fd_ >= 0) {
          ::close(spare_fd_);
          spare_fd_ = -1;
          const int victim = ::accept(listen_fd, nullptr, nullptr);
          if (victim >= 0) ::close(victim);
          spare_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
          stats_.accept_overflow.fetch_add(1, std::memory_order_relaxed);
          if (victim >= 0 && spare_fd_ >= 0) continue;  // keep draining the backlog
        }
      }
      break;  // EAGAIN, or a transient error — the poller will re-arm us
    }
    try {
      set_nonblocking(fd);
    } catch (const std::runtime_error&) {
      ::close(fd);
      continue;
    }
    const int one = 1;  // latency over batching; a no-op (error) on AF_UNIX
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>(config_);
    const std::uint64_t conn_id = next_conn_id_++;
    conn->id = conn_id;
    conn->fd = fd;
    conn->trusted = trusted;
    conn_by_fd_[fd] = conn_id;
    conns_.emplace(conn_id, std::move(conn));
    stats_.accepted_connections.fetch_add(1, std::memory_order_relaxed);
    if (!poller_->set(fd, /*read=*/true, /*write=*/false)) {
      // Registration refused (epoll watch limit): an unmonitored socket
      // would hang forever; close it so the client sees a clean reset.
      stats_.accept_overflow.fetch_add(1, std::memory_order_relaxed);
      close_connection(conn_id);
    }
  }
}

void NetServer::handle_readable(Connection& conn) {
  std::uint8_t buf[64 * 1024];
  while (!conn.dead && !conn.reads_paused && !conn.close_after_flush) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n == 0) {  // orderly peer close
      conn.dead = true;
      break;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) conn.dead = true;
      break;
    }
    conn.decoder.feed(std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
    while (std::optional<Frame> frame = conn.decoder.next()) {
      handle_frame(conn, std::move(*frame));
      if (conn.dead || conn.close_after_flush) break;
    }
    if (conn.decoder.failed() && !conn.dead && !conn.close_after_flush) {
      // Framing garbage: the one offense that costs the connection.
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      conn.close_after_flush = true;
      send_error(conn, 0, ErrorCode::kBadFrame, conn.decoder.error());
    }
  }
  if (conn.dead) {
    close_connection(conn.id);
    return;
  }
  if (conn.close_after_flush && !flush(conn)) close_connection(conn.id);
}

void NetServer::handle_frame(Connection& conn, Frame frame) {
  stats_.frames_in.fetch_add(1, std::memory_order_relaxed);
  switch (frame.type) {
    case FrameType::kPing:
      send_frame(conn, FrameType::kPong, frame.request_id, std::move(frame.payload));
      break;
    case FrameType::kScore:
      if (!config_.allow_raw_scores && !conn.trusted) {
        // Policy refusal, not a protocol error: the connection stays up
        // and may keep querying through the decision-only channel.
        send_error(conn, frame.request_id, ErrorCode::kUnsupported,
                   "raw scores disabled for untrusted endpoints; use kVerdict");
        break;
      }
      handle_score(conn, frame, /*decision_only=*/false);
      break;
    case FrameType::kVerdict:
      handle_score(conn, frame, /*decision_only=*/true);
      break;
    case FrameType::kStats:
      send_frame(conn, FrameType::kStatsResult, frame.request_id,
                 serve::serialize(service_.stats()));
      break;
    default:
      send_error(conn, frame.request_id, ErrorCode::kUnsupported,
                 "server does not accept this frame type");
      break;
  }
}

void NetServer::handle_score(Connection& conn, const Frame& frame, bool decision_only) {
  // Fair share first, before any decode work: a flooding connection must
  // not even cost the reactor payload parsing beyond its share. The
  // refusal is in-protocol and the connection stays fully usable — the
  // next token refill readmits it.
  if (conn.bucket.enabled() &&
      !conn.bucket.try_take(std::chrono::steady_clock::now())) {
    ++conn.throttled;
    stats_.throttled_responses.fetch_add(1, std::memory_order_relaxed);
    if (conn.throttled > stats_.throttled_conn_peak.load(std::memory_order_relaxed)) {
      stats_.throttled_conn_peak.store(conn.throttled,
                                       std::memory_order_relaxed);  // reactor-only writer
    }
    service_.record_throttled();
    send_error(conn, frame.request_id, ErrorCode::kThrottled,
               "per-connection rate limit; retry later");
    return;
  }
  std::optional<ScoreRequest> req = decode_score_request(frame.payload);
  if (!req.has_value() || req->view >= trace::kNumViews) {
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    conn.close_after_flush = true;  // before send: flush may finish the job
    send_error(conn, frame.request_id, ErrorCode::kBadFrame, "malformed score request");
    return;
  }
  auto owned = std::make_unique<Pending>();
  Pending* pending = owned.get();
  pending->server = this;
  pending->key = next_pending_key_++;
  pending->conn_id = conn.id;
  pending->request_id = frame.request_id;
  pending->decision_only = decision_only;
  pending->ticket.set_decision_only(decision_only);
  pending->features.put(
      trace::FeatureConfig{static_cast<trace::FeatureView>(req->view), req->period},
      std::move(req->windows));
  pending->ticket.set_completion_hook(&NetServer::score_complete_hook, pending);
  std::optional<serve::ServiceClock::time_point> deadline;
  if (req->deadline_us > 0) {
    deadline = serve::ServiceClock::now() + std::chrono::microseconds(req->deadline_us);
  }
  pending_.emplace(pending->key, std::move(owned));
  const serve::SubmitStatus status =
      service_.try_submit(pending->features, pending->ticket, deadline);
  if (status == serve::SubmitStatus::kAccepted) {
    stats_.scores_submitted.fetch_add(1, std::memory_order_relaxed);
    return;  // the reply travels via score_complete_hook -> drain_completions
  }
  // Rejected: the hook already pushed this key; erasing the entry makes
  // the mailbox token stale, and drain_completions skips stale keys.
  pending_.erase(pending->key);
  if (status == serve::SubmitStatus::kRejected) {
    // Admission control judged the DEADLINE unmeetable — a request-level
    // disposition, not a transport condition, so it travels as a result
    // frame with outcome kRejected (exactly how a queue-expired request
    // reports kDeadlineMissed), never as an Error frame.
    stats_.rejected_responses.fetch_add(1, std::memory_order_relaxed);
    const auto outcome = static_cast<std::uint8_t>(serve::RequestOutcome::kRejected);
    if (decision_only) {
      VerdictResult result;
      result.outcome = outcome;
      send_frame(conn, FrameType::kVerdictResult, frame.request_id,
                 encode_verdict_result(result));
    } else {
      ScoreResult result;
      result.outcome = outcome;
      send_frame(conn, FrameType::kScoreResult, frame.request_id,
                 encode_score_result(result));
    }
    return;
  }
  stats_.shed_responses.fetch_add(1, std::memory_order_relaxed);
  const bool shed = status == serve::SubmitStatus::kShed;
  send_error(conn, frame.request_id, shed ? ErrorCode::kShed : ErrorCode::kClosed,
             shed ? "request queue full; retry later" : "scoring service closed");
}

void NetServer::score_complete_hook(void* arg) noexcept {
  auto* pending = static_cast<Pending*>(arg);
  // `pending` stays alive until the reactor consumes the key we are about
  // to push, and the server outlives the hook window via hooks_in_flight_;
  // past the push, touch only the locals.
  NetServer* server = pending->server;
  server->hooks_in_flight_.fetch_add(1, std::memory_order_acq_rel);
  const std::uint64_t key = pending->key;
  {
    const util::MutexLock lock(server->completed_mu_);
    server->completed_.push_back(key);
  }
  server->wake();
  server->hooks_in_flight_.fetch_sub(1, std::memory_order_release);
}

void NetServer::drain_completions() {
  std::vector<std::uint64_t> keys;
  {
    const util::MutexLock lock(completed_mu_);
    keys.swap(completed_);
  }
  for (const std::uint64_t key : keys) {
    const auto it = pending_.find(key);
    if (it == pending_.end()) continue;  // stale: rejected submission, handled inline
    const std::unique_ptr<Pending> pending = std::move(it->second);
    pending_.erase(it);
    if (pending->conn_id == 0) continue;  // client left before the verdict
    Connection* conn = find_conn(pending->conn_id);
    if (conn == nullptr) continue;
    if (pending->decision_only) {
      // Decision-only reply: per-window decisions at the scoring epoch's
      // threshold (stamped into the ticket by the worker) — the raw
      // scores never reach the wire.
      VerdictResult result;
      result.outcome = static_cast<std::uint8_t>(pending->ticket.outcome());
      result.verdict = pending->ticket.verdict();
      result.epoch_id = pending->ticket.epoch_id();
      result.latency_ns = static_cast<std::uint64_t>(pending->ticket.latency().count());
      const std::vector<double>& scores = pending->ticket.scores();
      result.decisions.resize(scores.size());
      for (std::size_t i = 0; i < scores.size(); ++i) {
        result.decisions[i] = scores[i] >= pending->ticket.threshold();
      }
      send_frame(*conn, FrameType::kVerdictResult, pending->request_id,
                 encode_verdict_result(result));
    } else {
      ScoreResult result;
      result.outcome = static_cast<std::uint8_t>(pending->ticket.outcome());
      result.verdict = pending->ticket.verdict();
      result.epoch_id = pending->ticket.epoch_id();
      result.latency_ns = static_cast<std::uint64_t>(pending->ticket.latency().count());
      result.scores = pending->ticket.scores();
      send_frame(*conn, FrameType::kScoreResult, pending->request_id,
                 encode_score_result(result));
    }
    if (conn->dead) close_connection(conn->id);
  }
}

// -- write path -------------------------------------------------------------

void NetServer::send_frame(Connection& conn, FrameType type, std::uint64_t request_id,
                           std::vector<std::uint8_t> payload) {
  if (conn.dead) return;
  Frame frame;
  frame.type = type;
  frame.request_id = request_id;
  frame.payload = std::move(payload);
  encode_frame(frame, conn.out);
  stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t depth = conn.out.size() - conn.out_at;
  if (depth > stats_.out_buffer_peak.load(std::memory_order_relaxed)) {
    stats_.out_buffer_peak.store(depth, std::memory_order_relaxed);  // reactor-only writer
  }
  (void)flush(conn);
}

void NetServer::send_error(Connection& conn, std::uint64_t request_id, ErrorCode code,
                           std::string message) {
  ErrorBody body;
  body.code = code;
  body.message = std::move(message);
  send_frame(conn, FrameType::kError, request_id, encode_error(body));
}

bool NetServer::flush(Connection& conn) {
  if (conn.dead) return false;
  while (conn.out_at < conn.out.size()) {
    const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_at,
                             conn.out.size() - conn.out_at, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_at += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    conn.dead = true;  // EPIPE / ECONNRESET / anything fatal
    return false;
  }
  if (conn.out_at == conn.out.size()) {
    conn.out.clear();
    conn.out_at = 0;
  } else if (conn.out_at > 64 * 1024) {  // reclaim the written prefix
    conn.out.erase(conn.out.begin(), conn.out.begin() + static_cast<std::ptrdiff_t>(conn.out_at));
    conn.out_at = 0;
  }
  if (conn.close_after_flush && conn.out.empty()) {
    conn.dead = true;  // error frame delivered; the connection is done
    return false;
  }
  if (!update_interest(conn)) {
    conn.dead = true;  // poller refused the fd; unmonitored = hung forever
    return false;
  }
  return true;
}

bool NetServer::update_interest(Connection& conn) {
  const std::size_t backlog = conn.out.size() - conn.out_at;
  if (backlog > config_.write_buffer_limit) {
    if (!conn.reads_paused) {
      // Bounded buffering: stop reading so TCP flow control pushes back on
      // the client instead of this buffer absorbing the flood.
      conn.reads_paused = true;
      stats_.reads_paused.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (conn.reads_paused && backlog <= config_.write_buffer_limit / 2) {
    conn.reads_paused = false;
  }
  const bool want_read = !conn.reads_paused && !conn.close_after_flush;
  return poller_->set(conn.fd, want_read, backlog > 0);
}

void NetServer::close_connection(std::uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;
  poller_->remove(conn.fd);
  conn_by_fd_.erase(conn.fd);
  ::close(conn.fd);
  // Orphan this connection's in-flight scores: the tickets still complete
  // (service accounting stays exact); the replies just have nowhere to go.
  for (auto& [key, pending] : pending_) {
    if (pending->conn_id == conn_id) pending->conn_id = 0;
  }
  conns_.erase(it);
  stats_.closed_connections.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace shmd::net
