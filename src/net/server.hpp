// NetServer: the socket front-end of serve::ScoringService.
//
// One reactor thread multiplexes every connection with non-blocking I/O —
// epoll on Linux, poll() as the portable fallback (also selectable at
// runtime for test coverage via NetServerConfig::force_poll). The reactor
// NEVER blocks on the scoring plane: submissions go through try_submit(),
// and completions flow back through ScoreTicket's completion hook, which
// hands the reactor a key over a self-wake pipe. Scoring threads never
// touch a socket; the reactor never waits on a ticket.
//
// Backpressure discipline (the whole point of fronting a *bounded* queue):
//   * a full RequestQueue surfaces as an in-protocol kShed Error frame on
//     the live connection — never a disconnect, never hidden buffering;
//   * an unmeetable deadline (admission-control kRejected) surfaces as a
//     Score/VerdictResult whose outcome is kRejected — the request-level
//     disposition, distinct from transport-level rejections;
//   * each connection owns a fair-share token bucket (throttle_rps): a
//     hot client that exceeds its share gets in-protocol kThrottled Error
//     frames — never a disconnect — so one flooding connection degrades
//     to its fair share instead of starving every other client behind
//     the shared queue;
//   * per-connection write buffers are bounded: past the limit the
//     reactor stops reading that connection (so TCP flow control pushes
//     back on the client) until the buffer drains;
//   * only protocol garbage — bad magic, wrong version, oversized or
//     malformed frames — costs the connection: one kBadFrame Error frame,
//     flushed best-effort, then close.
//
// Determinism rides along untouched: the service seeds each request's
// fault stream from its admission sequence number, and a single pipelined
// connection admits requests in wire order, so scores over loopback are
// bit-identical to the same submissions made in-process.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/frame.hpp"
#include "serve/scoring_service.hpp"
#include "util/cli.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace shmd::net {

struct NetServerConfig {
  /// Largest accepted frame payload; larger = protocol error.
  std::size_t max_payload = kDefaultMaxPayload;
  /// Per-connection outbound buffer ceiling. Above it the reactor stops
  /// reading that connection until the buffer drains below half.
  std::size_t write_buffer_limit = 256 * 1024;
  /// Use the poll() reactor even where epoll is available (test knob —
  /// both reactors must pass the same suite).
  bool force_poll = false;
  /// When false, kScore frames from UNTRUSTED listeners (see
  /// add_listener) are refused with an in-protocol kUnsupported error:
  /// untrusted endpoints get the decision-only kVerdict channel, never
  /// raw scores. The paper's threat model hands the attacker decisions;
  /// this knob keeps the wire from leaking more than the model assumes.
  bool allow_raw_scores = true;
  /// Per-connection fair-share limit on scoring requests (kScore +
  /// kVerdict), in requests per second; 0 disables throttling. Excess
  /// requests get an in-protocol kThrottled Error frame — the connection
  /// is never closed for being hot.
  double throttle_rps = 0.0;
  /// Token-bucket burst: how many requests a connection may issue
  /// back-to-back before the per-second rate binds.
  double throttle_burst = 32.0;
};

/// Reactor-thread counters, snapshot via NetServer::stats().
struct NetServerStats {
  std::uint64_t accepted_connections = 0;
  std::uint64_t closed_connections = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t scores_submitted = 0;  ///< accepted by the service
  std::uint64_t shed_responses = 0;    ///< kShed/kClosed Error frames sent
  std::uint64_t protocol_errors = 0;   ///< connections killed for garbage
  std::uint64_t reads_paused = 0;      ///< backpressure engagements
  std::uint64_t out_buffer_peak = 0;   ///< high-water mark of any write buffer
  std::uint64_t accept_overflow = 0;   ///< connections shed: fd exhaustion or poller refusal
  std::uint64_t throttled_responses = 0;  ///< kThrottled Error frames sent
  std::uint64_t rejected_responses = 0;   ///< admission-control kRejected replies sent
  /// High-water mark of any single connection's throttle count — reads as
  /// "the hottest client was turned away this many times" (fair-share
  /// evidence: a polite client's count stays near zero while this climbs).
  std::uint64_t throttled_conn_peak = 0;
};

class NetServer {
 public:
  explicit NetServer(serve::ScoringService& service, NetServerConfig config = {});
  ~NetServer();  ///< stop()

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Bind + listen on a TCP host:port or Unix path. Call before start().
  /// Returns the resolved endpoint — for TCP port 0 the kernel-assigned
  /// ephemeral port is filled in, so tests can bind "127.0.0.1:0" and
  /// learn where to connect. Throws std::runtime_error on bind failure.
  /// `trusted` marks connections accepted here as trusted for the
  /// allow_raw_scores policy (typical deployment: local Unix socket
  /// trusted, TCP untrusted).
  util::Endpoint add_listener(const util::Endpoint& endpoint, bool trusted = true);

  /// Start the reactor thread. Requires at least one listener.
  void start();

  /// Stop accepting, wait for every in-flight score to complete (each
  /// accepted ticket is completed by the service, never dropped), close
  /// all connections, join the reactor. Idempotent.
  void stop();

  [[nodiscard]] NetServerStats stats() const;

 private:
  struct Connection;
  struct Pending;
  class Poller;

  void event_loop();
  void wake() noexcept;
  void handle_accept(int listen_fd);
  void handle_readable(Connection& conn);
  void handle_frame(Connection& conn, Frame frame);
  void handle_score(Connection& conn, const Frame& frame, bool decision_only);
  void drain_completions();
  void send_frame(Connection& conn, FrameType type, std::uint64_t request_id,
                  std::vector<std::uint8_t> payload);
  void send_error(Connection& conn, std::uint64_t request_id, ErrorCode code,
                  std::string message);
  /// Write as much of conn.out as the socket accepts; updates poller
  /// interest and read-pause state. Returns false if the connection died.
  bool flush(Connection& conn);
  /// Recompute poller interest from buffered output and pause state.
  /// Returns false if the poller refused the fd (the connection must die
  /// — an unmonitored socket would hang silently forever).
  [[nodiscard]] bool update_interest(Connection& conn);
  void close_connection(std::uint64_t conn_id);
  Connection* find_conn(std::uint64_t conn_id) noexcept;
  static void score_complete_hook(void* arg) noexcept;

  serve::ScoringService& service_;
  NetServerConfig config_;

  struct Listener {
    int fd = -1;
    util::Endpoint endpoint;  ///< resolved
    bool trusted = true;      ///< connections inherit this trust marking
  };
  std::vector<Listener> listeners_;

  // Reactor state — touched only by the reactor thread once start()ed.
  std::unique_ptr<Poller> poller_;
  std::unordered_map<int, std::uint64_t> conn_by_fd_;  ///< fd -> conn id (fds recycle; ids don't)
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Pending>> pending_;
  std::uint64_t next_conn_id_ = 1;
  std::uint64_t next_pending_key_ = 1;

  // Completion mailbox: scoring threads push keys, the reactor drains.
  util::Mutex completed_mu_;
  std::vector<std::uint64_t> completed_ SHMD_GUARDED_BY(completed_mu_);
  int wake_fds_[2] = {-1, -1};  ///< self-pipe: [0] read (reactor), [1] write (hook)
  /// Reserved fd (open /dev/null) released under EMFILE/ENFILE so
  /// handle_accept can accept-and-close instead of busy-spinning on a
  /// level-triggered listener whose backlog it cannot drain.
  int spare_fd_ = -1;
  /// Hooks between their mailbox push and their last touch of `this`;
  /// stop() spins to zero before returning so a completing worker can
  /// never race server destruction.
  std::atomic<std::size_t> hooks_in_flight_{0};

  std::thread reactor_;
  std::atomic<bool> stop_requested_{false};
  bool started_ = false;

  struct AtomicStats {
    std::atomic<std::uint64_t> accepted_connections{0};
    std::atomic<std::uint64_t> closed_connections{0};
    std::atomic<std::uint64_t> frames_in{0};
    std::atomic<std::uint64_t> frames_out{0};
    std::atomic<std::uint64_t> scores_submitted{0};
    std::atomic<std::uint64_t> shed_responses{0};
    std::atomic<std::uint64_t> protocol_errors{0};
    std::atomic<std::uint64_t> reads_paused{0};
    std::atomic<std::uint64_t> out_buffer_peak{0};
    std::atomic<std::uint64_t> accept_overflow{0};
    std::atomic<std::uint64_t> throttled_responses{0};
    std::atomic<std::uint64_t> rejected_responses{0};
    std::atomic<std::uint64_t> throttled_conn_peak{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace shmd::net
