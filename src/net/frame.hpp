// The Stochastic-HMD wire protocol: length-prefixed binary frames between
// scoring clients and the network front-end (server.hpp).
//
// A frame is a fixed 20-byte header followed by a payload:
//
//   offset  size  field
//   0       4     magic 0x53484D44 ("SHMD"), little-endian
//   4       1     protocol version (kProtocolVersion)
//   5       1     frame type (FrameType)
//   6       2     reserved, must be 0
//   8       8     request id (client-chosen; echoed verbatim in replies)
//   16      4     payload length in bytes
//
// Everything multi-byte is little-endian by explicit byte shifts — the
// format is defined by these functions, not by any struct layout or host
// endianness. Doubles travel as their IEEE-754 bit pattern in a u64, so a
// score is bit-identical on both ends of the wire: the service's
// determinism contract (fixed seed + admission order => identical scores)
// survives transport.
//
// FrameDecoder is deliberately incremental: TCP gives byte streams, not
// frames, so feed() accepts arbitrary fragmentation and coalescing and
// next() yields complete frames as they materialize. Garbage (bad magic,
// unknown version, nonzero reserved bits) and oversized payloads put the
// decoder into a sticky failed() state with a diagnostic — after a
// framing error nothing downstream is trustworthy, so the connection must
// be torn down, never resynchronized by guesswork.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace shmd::net {

inline constexpr std::uint32_t kMagic = 0x53484D44u;  // "SHMD"
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 20;
/// Default payload ceiling: generous for feature windows (a 1 MiB frame
/// holds ~8k windows of 16 doubles) yet small enough that a hostile
/// length field cannot balloon server memory.
inline constexpr std::size_t kDefaultMaxPayload = 1u << 20;

enum class FrameType : std::uint8_t {
  kPing = 0,         ///< liveness probe; payload echoed back in kPong
  kPong = 1,
  kScore = 2,        ///< feature windows to score (ScoreRequest payload)
  kScoreResult = 3,  ///< terminal scoring outcome (ScoreResult payload)
  kStats = 4,        ///< request a ServiceStatsSnapshot (empty payload)
  kStatsResult = 5,  ///< serve::serialize()d snapshot
  kError = 6,        ///< in-protocol rejection (ErrorBody payload)
  /// Decision-only scoring (the deployed attack surface, §V threat
  /// model): same ScoreRequest payload as kScore, but the reply is a
  /// kVerdictResult that exposes per-window DECISIONS at the serving
  /// epoch's threshold — never the raw scores. A server run with
  /// --no-raw-scores answers untrusted endpoints only on this pair.
  kVerdict = 7,
  kVerdictResult = 8,  ///< terminal decision-only outcome (VerdictResult payload)
};

/// Error frame codes. kShed is the overload-control path: a full
/// RequestQueue surfaces as this frame on the live connection — never as
/// a disconnect, never as unbounded buffering.
enum class ErrorCode : std::uint16_t {
  kShed = 1,         ///< request queue full; retry later
  kClosed = 2,       ///< service shutting down; no more scoring
  kBadFrame = 3,     ///< malformed payload in an otherwise valid frame
  kUnsupported = 4,  ///< frame type the server does not handle
  kThrottled = 5,    ///< per-connection fair-share rate limit; retry later —
                     ///< never a disconnect (the connection stays usable)
};

struct Frame {
  FrameType type = FrameType::kPing;
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> payload;

  friend bool operator==(const Frame&, const Frame&) = default;
};

/// Append one encoded frame (header + payload) to `out`.
void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out);

// -- payload codecs ---------------------------------------------------------

/// kScore payload: one program's feature windows plus the feature-config
/// key the serving epoch must match, and an optional relative deadline.
struct ScoreRequest {
  std::uint8_t view = 0;          ///< trace::FeatureView underlying value
  std::uint32_t period = 2048;    ///< detection period (window size)
  std::uint32_t deadline_us = 0;  ///< relative deadline; 0 = none
  std::size_t width = 0;          ///< doubles per window
  std::vector<std::vector<double>> windows;

  friend bool operator==(const ScoreRequest&, const ScoreRequest&) = default;
};

/// kScoreResult payload: the terminal disposition of an accepted request.
/// `outcome` carries serve::RequestOutcome's underlying value.
struct ScoreResult {
  std::uint8_t outcome = 0;
  bool verdict = false;
  std::uint64_t epoch_id = 0;
  std::uint64_t latency_ns = 0;
  std::vector<double> scores;

  friend bool operator==(const ScoreResult&, const ScoreResult&) = default;
};

/// kVerdictResult payload: the decision-only sibling of ScoreResult.
/// Wire layout: outcome u8, verdict u8, reserved u16, epoch_id u64,
/// latency_ns u64, n_decisions u32, then ceil(n/8) bytes of decision
/// bits (LSB-first within each byte; pad bits in the last byte MUST be
/// zero — a nonzero pad is rejected as malformed).
struct VerdictResult {
  std::uint8_t outcome = 0;  ///< serve::RequestOutcome underlying value
  bool verdict = false;      ///< program-level fraction-vote verdict
  std::uint64_t epoch_id = 0;
  std::uint64_t latency_ns = 0;
  std::vector<bool> decisions;  ///< per-window decisions at the epoch threshold

  friend bool operator==(const VerdictResult&, const VerdictResult&) = default;
};

struct ErrorBody {
  ErrorCode code = ErrorCode::kBadFrame;
  std::string message;

  friend bool operator==(const ErrorBody&, const ErrorBody&) = default;
};

[[nodiscard]] std::vector<std::uint8_t> encode_score_request(const ScoreRequest& req);
[[nodiscard]] std::optional<ScoreRequest> decode_score_request(
    std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> encode_score_result(const ScoreResult& result);
[[nodiscard]] std::optional<ScoreResult> decode_score_result(
    std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> encode_verdict_result(const VerdictResult& result);
[[nodiscard]] std::optional<VerdictResult> decode_verdict_result(
    std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> encode_error(const ErrorBody& error);
[[nodiscard]] std::optional<ErrorBody> decode_error(std::span<const std::uint8_t> payload);

// -- incremental decoding ---------------------------------------------------

/// Reassembles frames from an arbitrarily fragmented byte stream. Usage:
/// feed() every chunk the socket yields, then drain next() until nullopt.
/// failed() is sticky; a failed decoder ignores further input.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  void feed(std::span<const std::uint8_t> bytes);

  /// Next complete frame, or nullopt when more bytes are needed (or the
  /// stream has failed). Frames come out in wire order.
  [[nodiscard]] std::optional<Frame> next();

  [[nodiscard]] bool failed() const noexcept { return failed_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  /// Bytes buffered but not yet returned as frames.
  [[nodiscard]] std::size_t buffered() const noexcept { return buffer_.size() - consumed_; }

 private:
  void fail(std::string reason);

  std::size_t max_payload_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  ///< parsed prefix, compacted lazily
  bool failed_ = false;
  std::string error_;
};

}  // namespace shmd::net
