// Simulated true random number generator (Intel DRNG-style).
//
// The paper's §VIII compares Stochastic-HMDs against a noise-injection
// defense that queries a TRNG per MAC. The physical TRNG is an *off-core*
// shared block: every RDSEED-style query crosses the uncore, contends with
// other cores, and costs orders of magnitude more latency/energy than an
// on-core PRNG step. We model exactly that cost structure; the entropy
// itself is simulated with xoshiro (bit quality is irrelevant here — only
// the query cost drives the reproduced result).
#pragma once

#include <cstdint>

#include "rng/random_source.hpp"
#include "rng/xoshiro256ss.hpp"

namespace shmd::rng {

/// Cost parameters for the simulated off-core TRNG.
struct TrngConfig {
  /// Uncore round-trip + conditioner latency per 64-bit read. The Intel
  /// DRNG software guide reports hundreds of cycles for RDRAND/RDSEED
  /// under contention; calibrated so a per-MAC TRNG defense lands at the
  /// paper's ~62x latency / ~112x energy overhead.
  double latency_cycles = 48.0;
  double energy_nj = 300.0;
  /// Entropy-pool refill: every `pool_words` reads the conditioner stalls
  /// for `refill_cycles` extra cycles (models ES starvation under bursts).
  std::uint32_t pool_words = 64;
  double refill_cycles = 256.0;
};

class TrngSim final : public RandomSource {
 public:
  explicit TrngSim(TrngConfig config = {}, std::uint64_t seed = 0x7E4B6E7280F1ULL);

  std::uint64_t next_u64() override;

  [[nodiscard]] QueryCost query_cost() const noexcept override;

  [[nodiscard]] const char* name() const noexcept override { return "trng"; }

  /// Total stall cycles accumulated by pool refills so far.
  [[nodiscard]] double refill_stall_cycles() const noexcept { return stall_cycles_; }

 private:
  TrngConfig config_;
  Xoshiro256ss entropy_;
  std::uint32_t reads_since_refill_ = 0;
  double stall_cycles_ = 0.0;
};

}  // namespace shmd::rng
