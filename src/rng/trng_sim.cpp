#include "rng/trng_sim.hpp"

namespace shmd::rng {

TrngSim::TrngSim(TrngConfig config, std::uint64_t seed) : config_(config), entropy_(seed) {}

std::uint64_t TrngSim::next_u64() {
  count_query();
  if (++reads_since_refill_ >= config_.pool_words) {
    reads_since_refill_ = 0;
    stall_cycles_ += config_.refill_cycles;
  }
  return entropy_();
}

QueryCost TrngSim::query_cost() const noexcept {
  // Amortize the periodic refill stall into the per-query figure so cost
  // accounting stays a simple multiply for the latency model.
  const double amortized_refill =
      config_.refill_cycles / static_cast<double>(config_.pool_words);
  return QueryCost{.latency_cycles = config_.latency_cycles + amortized_refill,
                   .energy_nj = config_.energy_nj};
}

}  // namespace shmd::rng
