// Approximate-entropy (ApEn) test, NIST SP 800-22 §2.12.
//
// §II of the paper validates that undervolting-induced fault locations are
// stochastic (time-variant) "using the approximate entropy test". We use
// the same test: the characterization bench feeds it the per-run fault-bit
// sequences, and the property tests assert that the injector's output
// passes while a deterministic (stuck-at) fault source fails.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace shmd::rng {

/// Raw ApEn(m) statistic over a binary sequence (with cyclic wraparound,
/// as specified by SP 800-22). For an i.i.d. fair-coin source this
/// approaches ln 2 ≈ 0.693 as the sequence grows.
[[nodiscard]] double approximate_entropy(std::span<const std::uint8_t> bits, unsigned block_len);

/// Result of the full NIST test: chi² statistic and p-value.
struct ApEnResult {
  double apen = 0.0;
  double chi_squared = 0.0;
  double p_value = 0.0;
  /// SP 800-22 accepts randomness at the 1% significance level.
  [[nodiscard]] bool random(double alpha = 0.01) const noexcept { return p_value >= alpha; }
};

/// Run the NIST approximate-entropy test with block length m.
/// Requires bits.size() >= 2^(m+5) or so for the asymptotics to hold;
/// throws std::invalid_argument when the sequence is degenerate (empty).
[[nodiscard]] ApEnResult apen_test(std::span<const std::uint8_t> bits, unsigned block_len = 2);

/// Upper regularized incomplete gamma function Q(a, x) = Γ(a,x)/Γ(a).
/// Exposed because the benches also use it to report p-values directly.
[[nodiscard]] double igamc(double a, double x);

/// Pack the low bit of each byte of `values` into a bit vector — helper for
/// turning fault-location samples into ApEn input.
[[nodiscard]] std::vector<std::uint8_t> to_bits(std::span<const std::uint64_t> values,
                                                unsigned bit);

}  // namespace shmd::rng
