#include "rng/lgm_prng.hpp"

namespace shmd::rng {

LgmPrng::LgmPrng(std::uint32_t seed) noexcept : state_(seed % kModulus) {
  if (state_ == 0) state_ = 1;  // 0 is an absorbing state for an MLCG.
}

std::uint32_t LgmPrng::next_u31() noexcept {
  // Schrage-free: 16807 * (2^31 - 2) < 2^46 fits comfortably in 64 bits.
  state_ = static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(state_) * kMultiplier) % kModulus);
  return state_;
}

std::uint64_t LgmPrng::next_u64() {
  count_query();
  const std::uint64_t a = next_u31();
  const std::uint64_t b = next_u31();
  const std::uint64_t c = next_u31();
  return (a << 33) ^ (b << 2) ^ (c & 0x3);
}

}  // namespace shmd::rng
