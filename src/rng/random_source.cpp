#include "rng/random_source.hpp"

#include <cmath>
#include <numbers>

namespace shmd::rng {

double RandomSource::gaussian() {
  const std::uint64_t bits = next_u64();
  // Two 32-bit uniforms from one draw; u1 kept away from 0 for log().
  const double u1 =
      (static_cast<double>(bits >> 32) + 1.0) * 0x1.0p-32;  // (0, 1]
  const double u2 = static_cast<double>(bits & 0xFFFFFFFFULL) * 0x1.0p-32;  // [0, 1)
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace shmd::rng
