// SplitMix64: used for seeding the other generators from a single u64 seed
// (the canonical seeding procedure recommended for xoshiro/xoroshiro).
#pragma once

#include <cstdint>

namespace shmd::rng {

class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t operator()() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

 private:
  std::uint64_t state_;
};

/// Deterministic per-item stream seed: splitmix over a base seed and a
/// golden-ratio-spread sequence number. This is THE request-anchoring
/// formula of the serving determinism contract — the scoring service
/// derives request k's fault stream from stream_seed(seed, k), and the
/// in-process attack oracle replays the same formula so an in-process
/// campaign is bit-identical to one run over the wire.
[[nodiscard]] constexpr std::uint64_t stream_seed(std::uint64_t base,
                                                  std::uint64_t seq) noexcept {
  SplitMix64 mix(base ^ ((seq + 1) * 0x9E3779B97F4A7C15ULL));
  return mix();
}

}  // namespace shmd::rng
