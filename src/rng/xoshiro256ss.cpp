#include "rng/xoshiro256ss.hpp"

#include <cmath>
#include <numbers>

#include "rng/splitmix64.hpp"

namespace shmd::rng {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256ss::Xoshiro256ss(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm();
}

std::uint64_t Xoshiro256ss::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256ss::uniform01() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256ss::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Xoshiro256ss::below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Rejection sampling: discard the biased tail of the 64-bit range.
  const std::uint64_t limit = ~0ULL - (~0ULL % bound);
  std::uint64_t x;
  do {
    x = (*this)();
  } while (x >= limit);
  return x % bound;
}

double Xoshiro256ss::gaussian() noexcept {
  // Box–Muller; u1 is kept away from 0 so log() is finite.
  double u1;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

bool Xoshiro256ss::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

void Xoshiro256ss::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL,
                                            0xA9582618E03FC9AAULL, 0x39ABDC4529B1661CULL};
  std::uint64_t t[4] = {0, 0, 0, 0};
  for (std::uint64_t j : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (j & (1ULL << b)) {
        t[0] ^= s_[0];
        t[1] ^= s_[1];
        t[2] ^= s_[2];
        t[3] ^= s_[3];
      }
      (*this)();
    }
  }
  s_[0] = t[0];
  s_[1] = t[1];
  s_[2] = t[2];
  s_[3] = t[3];
}

}  // namespace shmd::rng
