// RandomSource: the abstraction §VIII of the paper compares against.
//
// Noise-injection defenses (the TRNG/PRNG baselines) must query a randomness
// source once per MAC operation. The *cost* of that query is the whole
// story: an off-core TRNG (Intel DRNG-style) is shared between cores and
// expensive to reach; an on-core PRNG is cheap but still adds work per MAC;
// undervolting noise is free. Each source therefore reports a per-query
// latency/energy cost that the sys::LatencyModel and sys::EnergyMeter
// charge to the defense using it.
#pragma once

#include <cstdint>

namespace shmd::rng {

/// Per-query cost of drawing randomness from a source.
struct QueryCost {
  double latency_cycles = 0.0;  ///< CPU cycles consumed per 64-bit draw.
  double energy_nj = 0.0;       ///< Energy in nanojoules per 64-bit draw.
};

class RandomSource {
 public:
  virtual ~RandomSource() = default;

  /// Draw 64 uniform bits. Implementations also bump query_count().
  virtual std::uint64_t next_u64() = 0;

  /// Cost charged for every next_u64() call.
  [[nodiscard]] virtual QueryCost query_cost() const noexcept = 0;

  /// Human-readable name ("trng", "prng-lgm", ...).
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  [[nodiscard]] std::uint64_t query_count() const noexcept { return queries_; }
  void reset_query_count() noexcept { queries_ = 0; }

  /// Uniform double in [0,1) derived from one 64-bit draw.
  double uniform01() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Standard normal from ONE 64-bit draw: the two Box–Muller uniforms are
  /// taken from the high/low 32-bit halves. A per-MAC Gaussian-noise
  /// defense therefore pays exactly one query per MAC, which is the unit
  /// the §VIII overhead comparison is calibrated in.
  double gaussian();

 protected:
  void count_query() noexcept { ++queries_; }

 private:
  std::uint64_t queries_ = 0;
};

}  // namespace shmd::rng
