#include "rng/entropy.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace shmd::rng {

namespace {

/// Phi(m) from SP 800-22: sum over all m-bit patterns of pi * ln(pi),
/// where pi is the relative frequency of the pattern among the n cyclic
/// windows of the sequence.
double phi(std::span<const std::uint8_t> bits, unsigned m) {
  if (m == 0) return 0.0;
  const std::size_t n = bits.size();
  const std::size_t patterns = std::size_t{1} << m;
  std::vector<std::size_t> counts(patterns, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t idx = 0;
    for (unsigned j = 0; j < m; ++j) {
      idx = (idx << 1) | (bits[(i + j) % n] & 1U);
    }
    ++counts[idx];
  }
  double sum = 0.0;
  for (std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(n);
    sum += p * std::log(p);
  }
  return sum;
}

/// Lower incomplete gamma by series expansion (x < a + 1).
double gamma_series(double a, double x) {
  double sum = 1.0 / a;
  double term = sum;
  for (int k = 1; k < 1000; ++k) {
    term *= x / (a + k);
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Upper incomplete gamma by continued fraction (x >= a + 1), modified
/// Lentz's method.
double gamma_cont_frac(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 1000; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double igamc(double a, double x) {
  if (a <= 0.0) throw std::invalid_argument("igamc: a must be positive");
  if (x < 0.0) throw std::invalid_argument("igamc: x must be non-negative");
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_series(a, x);
  return gamma_cont_frac(a, x);
}

double approximate_entropy(std::span<const std::uint8_t> bits, unsigned block_len) {
  if (bits.empty()) throw std::invalid_argument("approximate_entropy: empty sequence");
  return phi(bits, block_len) - phi(bits, block_len + 1);
}

ApEnResult apen_test(std::span<const std::uint8_t> bits, unsigned block_len) {
  if (bits.empty()) throw std::invalid_argument("apen_test: empty sequence");
  if (block_len == 0) throw std::invalid_argument("apen_test: block_len must be >= 1");
  const double n = static_cast<double>(bits.size());
  ApEnResult r;
  r.apen = approximate_entropy(bits, block_len);
  r.chi_squared = 2.0 * n * (std::log(2.0) - r.apen);
  if (r.chi_squared < 0.0) r.chi_squared = 0.0;  // finite-sample ApEn can exceed ln 2
  // SP 800-22: p = igamc(2^(m-1), chi^2 / 2).
  r.p_value = igamc(std::pow(2.0, static_cast<double>(block_len) - 1.0), r.chi_squared / 2.0);
  return r;
}

std::vector<std::uint8_t> to_bits(std::span<const std::uint64_t> values, unsigned bit) {
  if (bit >= 64) throw std::invalid_argument("to_bits: bit index out of range");
  std::vector<std::uint8_t> out;
  out.reserve(values.size());
  for (std::uint64_t v : values) out.push_back(static_cast<std::uint8_t>((v >> bit) & 1U));
  return out;
}

}  // namespace shmd::rng
