// Lewis–Goodman–Miller "minimal standard" PRNG (IBM System/360, 1969).
//
// This is the PRNG the paper's §VIII overhead comparison cites ([25]):
// x_{n+1} = 16807 * x_n mod (2^31 - 1). We keep the historical parameters
// and wrap it as a RandomSource so the per-MAC PRNG-noise baseline can be
// charged its (small) per-query cost.
#pragma once

#include <cstdint>

#include "rng/random_source.hpp"

namespace shmd::rng {

class LgmPrng final : public RandomSource {
 public:
  static constexpr std::uint32_t kMultiplier = 16807;        // 7^5
  static constexpr std::uint32_t kModulus = 2147483647;      // 2^31 - 1 (Mersenne prime)

  explicit LgmPrng(std::uint32_t seed = 1) noexcept;

  /// One LGM step; returns the raw 31-bit state (never 0).
  std::uint32_t next_u31() noexcept;

  /// RandomSource: packs three LGM steps into ~64 bits (31+31+2).
  std::uint64_t next_u64() override;

  [[nodiscard]] QueryCost query_cost() const noexcept override {
    // A few multiply/mod instructions on-core; calibrated so the PRNG-noise
    // defense lands at the paper's ~4x latency / ~5.7x energy overhead.
    return QueryCost{.latency_cycles = 2.65, .energy_nj = 10.0};
  }

  [[nodiscard]] const char* name() const noexcept override { return "prng-lgm"; }

 private:
  std::uint32_t state_;
};

}  // namespace shmd::rng
