// xoshiro256** — the project's default fast PRNG.
//
// Satisfies UniformRandomBitGenerator so it composes with <random>
// distributions. All stochastic components (fault injection, synthetic
// trace generation, attack search) take an explicit generator so every
// experiment is reproducible from its seed.
#pragma once

#include <cstdint>

namespace shmd::rng {

class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state via SplitMix64, per the reference code.
  explicit Xoshiro256ss(std::uint64_t seed = 0x5EEDBA5EULL) noexcept;

  std::uint64_t operator()() noexcept;

  /// Uniform double in [0, 1) using the top 53 bits.
  double uniform01() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, bound) without modulo bias (Lemire's method
  /// would be overkill here; we use rejection sampling).
  std::uint64_t below(std::uint64_t bound) noexcept;
  /// Standard normal via Box–Muller (no cached spare: keeps state minimal).
  double gaussian() noexcept;
  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;

  /// Jump function: advances the state by 2^128 steps; used to derive
  /// non-overlapping streams for parallel experiment repeats.
  void jump() noexcept;

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

 private:
  std::uint64_t s_[4];
};

}  // namespace shmd::rng
