// AdmissionPolicy: pluggable overload behavior for the serving queue.
//
// The policy decides what happens at the two moments where the bounded
// ring has to make a choice under pressure:
//
//   * overflow (try_push on a full ring): shed the NEWCOMER (FIFO
//     baseline — today's behavior), or evict the OLDEST admitted request
//     to make room (drop-oldest). Under overload the oldest waiter is
//     the request most likely to blow its deadline anyway, so evicting
//     it trades a near-certain deadline miss for a fresh request that
//     still has budget.
//
//   * dequeue order: front of the ring (FIFO), or the BACK when the
//     queue is deeper than half its capacity (LIFO-under-overload). LIFO
//     under overload is the classic Wellons/Nichols trick: the newest
//     request is the one whose deadline is furthest away, so serving it
//     first maximizes the fraction of responses that are still useful;
//     the old requests it starves were going to miss anyway and get
//     reaped by the dequeue-time expiry check.
//
// Determinism: none of this perturbs scores. Each request's fault stream
// is anchored to the admission sequence number stamped under the queue
// lock at push time (rng::stream_seed(base, seq)), so a request scores
// bit-identically whether it was popped first or last, batched or alone.
// Policies change WHICH requests get scored (membership), never what
// score a surviving request receives — the fixed-seed score-hash CI
// check runs under every policy and must agree on the requests all
// policies admit. When the offered load is below capacity every policy
// admits everything in the same order, so the hashes are bit-identical
// across policies too (that is the CI gate).
//
// Thread safety: policy methods are called by RequestQueue with the
// queue mutex held; implementations are stateless and const.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace shmd::admit {

enum class PolicyKind {
  kFifo,        ///< Shed newcomers on overflow, pop oldest first (baseline).
  kDropOldest,  ///< Evict the oldest admitted request to admit the newcomer.
  kLifo,        ///< Pop newest first while the queue is more than half full.
};

class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;

  [[nodiscard]] virtual PolicyKind kind() const noexcept = 0;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// On a full ring: true → the caller evicts the oldest admitted
  /// request and admits the newcomer; false → the newcomer is shed.
  [[nodiscard]] virtual bool evict_oldest_on_overflow() const noexcept = 0;

  /// Dequeue order: true → pop from the back of the ring (newest first)
  /// given the current depth; false → pop from the front (FIFO).
  [[nodiscard]] virtual bool pop_newest_first(std::size_t depth,
                                              std::size_t capacity) const noexcept = 0;
};

/// Factory for the built-in policies. Never returns null.
[[nodiscard]] std::unique_ptr<AdmissionPolicy> make_policy(PolicyKind kind);

/// Maps "fifo" | "drop-oldest" | "lifo" to a kind; nullopt on anything else.
[[nodiscard]] std::optional<PolicyKind> parse_policy(std::string_view name);

/// Canonical CLI/JSON name for a kind ("fifo", "drop-oldest", "lifo").
[[nodiscard]] std::string_view policy_name(PolicyKind kind) noexcept;

}  // namespace shmd::admit
