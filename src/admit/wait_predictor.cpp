#include "admit/wait_predictor.hpp"

#include <bit>

namespace shmd::admit {

WaitPredictor::WaitPredictor(double alpha) noexcept
    : alpha_(alpha > 0.0 && alpha <= 1.0 ? alpha : 0.1),
      ewma_bits_(std::bit_cast<std::uint64_t>(0.0)),
      samples_(0) {}

void WaitPredictor::record_service_ns(std::uint64_t service_ns) noexcept {
  const double sample = static_cast<double>(service_ns);
  std::uint64_t observed = ewma_bits_.load(std::memory_order_relaxed);
  for (;;) {
    const double current = std::bit_cast<double>(observed);
    // First sample seeds the EWMA directly so a cold predictor does not
    // take 1/alpha requests to climb from zero.
    const double next =
        current == 0.0 ? sample : current + alpha_ * (sample - current);
    if (ewma_bits_.compare_exchange_weak(
            observed, std::bit_cast<std::uint64_t>(next),
            std::memory_order_relaxed, std::memory_order_relaxed)) {
      break;
    }
  }
  samples_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t WaitPredictor::ewma_service_ns() const noexcept {
  const double ewma =
      std::bit_cast<double>(ewma_bits_.load(std::memory_order_relaxed));
  return ewma <= 0.0 ? 0 : static_cast<std::uint64_t>(ewma);
}

std::uint64_t WaitPredictor::predicted_wait_ns(std::size_t queue_depth,
                                               std::size_t workers) const noexcept {
  const double ewma =
      std::bit_cast<double>(ewma_bits_.load(std::memory_order_relaxed));
  if (ewma <= 0.0 || queue_depth == 0) return 0;
  const double lanes = workers == 0 ? 1.0 : static_cast<double>(workers);
  const double wait = ewma * static_cast<double>(queue_depth) / lanes;
  return static_cast<std::uint64_t>(wait);
}

std::uint64_t WaitPredictor::samples() const noexcept {
  return samples_.load(std::memory_order_relaxed);
}

}  // namespace shmd::admit
