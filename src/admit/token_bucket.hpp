// TokenBucket: per-connection fair-share limiter for the net reactor.
//
// Classic token bucket: capacity `burst` tokens, refilled at `rate_rps`
// tokens per second, one token consumed per scoring request. A
// connection that exhausts its bucket gets an in-protocol kThrottled
// Error frame (never a disconnect) until the refill catches up — one hot
// client degrades to its fair share instead of starving the queue for
// everyone behind the same reactor.
//
// Deliberately single-threaded and clock-free: the bucket is owned by
// the reactor thread (one per Connection), and `try_take` receives the
// caller's steady_clock timestamp instead of reading a clock itself.
// That keeps it trivially testable (tests feed synthetic time) and keeps
// clock reads out of this header — the reactor already has `now` in hand
// when a frame arrives.
//
// Fractional tokens accumulate in double precision so slow refill rates
// (e.g. 10 rps) work without quantization; burst bounds the stored
// credit so an idle connection cannot bank unlimited tokens.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>

namespace shmd::admit {

class TokenBucket {
 public:
  /// `rate_rps` tokens per second, up to `burst` banked. rate_rps == 0
  /// disables the limiter: try_take always succeeds.
  TokenBucket(double rate_rps, double burst) noexcept
      : rate_rps_(rate_rps < 0.0 ? 0.0 : rate_rps),
        burst_(burst < 1.0 ? 1.0 : burst),
        tokens_(burst_) {}

  /// Consume one token if available after refilling to `now`.
  /// Returns false when the bucket is empty (caller throttles).
  [[nodiscard]] bool try_take(std::chrono::steady_clock::time_point now) noexcept {
    if (rate_rps_ == 0.0) return true;
    refill(now);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  /// Tokens currently banked (after refilling to `now`); observability.
  [[nodiscard]] double available(std::chrono::steady_clock::time_point now) noexcept {
    if (rate_rps_ == 0.0) return burst_;
    refill(now);
    return tokens_;
  }

  [[nodiscard]] bool enabled() const noexcept { return rate_rps_ > 0.0; }

 private:
  void refill(std::chrono::steady_clock::time_point now) noexcept {
    if (!initialized_) {
      last_ = now;
      initialized_ = true;
      return;
    }
    if (now <= last_) return;
    const double elapsed_s =
        std::chrono::duration<double>(now - last_).count();
    last_ = now;
    tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_rps_);
  }

  double rate_rps_;
  double burst_;
  double tokens_;
  bool initialized_ = false;
  std::chrono::steady_clock::time_point last_{};
};

}  // namespace shmd::admit
