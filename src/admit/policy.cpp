#include "admit/policy.hpp"

namespace shmd::admit {
namespace {

class FifoPolicy final : public AdmissionPolicy {
 public:
  [[nodiscard]] PolicyKind kind() const noexcept override {
    return PolicyKind::kFifo;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "fifo";
  }
  [[nodiscard]] bool evict_oldest_on_overflow() const noexcept override {
    return false;
  }
  [[nodiscard]] bool pop_newest_first(std::size_t /*depth*/,
                                      std::size_t /*capacity*/) const noexcept override {
    return false;
  }
};

class DropOldestPolicy final : public AdmissionPolicy {
 public:
  [[nodiscard]] PolicyKind kind() const noexcept override {
    return PolicyKind::kDropOldest;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "drop-oldest";
  }
  [[nodiscard]] bool evict_oldest_on_overflow() const noexcept override {
    return true;
  }
  [[nodiscard]] bool pop_newest_first(std::size_t /*depth*/,
                                      std::size_t /*capacity*/) const noexcept override {
    return false;
  }
};

class LifoPolicy final : public AdmissionPolicy {
 public:
  [[nodiscard]] PolicyKind kind() const noexcept override {
    return PolicyKind::kLifo;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "lifo";
  }
  [[nodiscard]] bool evict_oldest_on_overflow() const noexcept override {
    return false;
  }
  [[nodiscard]] bool pop_newest_first(std::size_t depth,
                                      std::size_t capacity) const noexcept override {
    // Stay FIFO while the queue is shallow: below half capacity every
    // waiter is young enough to make its deadline, and FIFO preserves
    // arrival fairness. Past that the queue is in overload and newest-
    // first maximizes in-deadline completions.
    return depth * 2 > capacity;
  }
};

}  // namespace

std::unique_ptr<AdmissionPolicy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kDropOldest:
      return std::make_unique<DropOldestPolicy>();
    case PolicyKind::kLifo:
      return std::make_unique<LifoPolicy>();
    case PolicyKind::kFifo:
      break;
  }
  return std::make_unique<FifoPolicy>();
}

std::optional<PolicyKind> parse_policy(std::string_view name) {
  if (name == "fifo") return PolicyKind::kFifo;
  if (name == "drop-oldest") return PolicyKind::kDropOldest;
  if (name == "lifo") return PolicyKind::kLifo;
  return std::nullopt;
}

std::string_view policy_name(PolicyKind kind) noexcept {
  switch (kind) {
    case PolicyKind::kDropOldest:
      return "drop-oldest";
    case PolicyKind::kLifo:
      return "lifo";
    case PolicyKind::kFifo:
      break;
  }
  return "fifo";
}

}  // namespace shmd::admit
