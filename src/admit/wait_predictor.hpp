// WaitPredictor: the admission plane's estimate of how long a request
// arriving NOW would wait in the queue before a worker reaches it.
//
// The estimator is deliberately minimal — an exponentially-weighted
// moving average of per-request service time, multiplied out by the
// current queue depth and divided by the worker count:
//
//   predicted_wait ≈ ewma(service_ns) * depth / workers
//
// That is the textbook fluid approximation for a multi-server queue, and
// it is exactly the quantity reject-on-arrival needs: if
// now + predicted_wait already exceeds the request's deadline, the
// request is doomed — admitting it would burn a ring slot and a worker
// dequeue only to count a deadline miss. The serving layer rejects it at
// the door instead (SubmitStatus::kRejected), which is what keeps
// survivor latency honest under overload: the queue holds only requests
// that still have a chance.
//
// Concurrency: record() is called by every scoring worker per completed
// request; predicted_wait_ns() by every submitting thread. Both sides are
// lock-free. The EWMA lives in one atomic as the bit pattern of a double,
// updated with a compare-exchange loop under relaxed ordering — the
// estimator feeds a heuristic admission decision, never the determinism
// contract, so no ordering beyond the atomicity of each update is needed
// (the R7 rules: every access names its ordering explicitly). A lost race
// between two workers costs one sample's worth of smoothing, nothing
// more.
//
// Cold start: until the first sample lands the EWMA is 0 and every
// request is predicted to wait 0 ns — admission control admits
// everything, which is the correct failure mode for an estimator with no
// data (shedding on a guess would reject traffic an idle service could
// trivially score).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace shmd::admit {

class WaitPredictor {
 public:
  /// `alpha` is the EWMA smoothing factor in (0, 1]: the weight of the
  /// newest sample. 0.1 remembers roughly the last ~10 requests — long
  /// enough to ride out one slow outlier, short enough to track an epoch
  /// swap that changes the error rate (and thus the per-request cost).
  explicit WaitPredictor(double alpha = 0.1) noexcept;

  WaitPredictor(const WaitPredictor&) = delete;
  WaitPredictor& operator=(const WaitPredictor&) = delete;

  /// Fold one completed request's service time (queue-exit to completion)
  /// into the EWMA. Called by scoring workers; lock-free.
  void record_service_ns(std::uint64_t service_ns) noexcept;

  /// Current smoothed per-request service time estimate; 0 until the
  /// first sample.
  [[nodiscard]] std::uint64_t ewma_service_ns() const noexcept;

  /// Predicted queue wait for a request arriving behind `queue_depth`
  /// already-admitted requests, with `workers` draining in parallel
  /// (workers == 0 is treated as 1). 0 while the predictor is cold.
  [[nodiscard]] std::uint64_t predicted_wait_ns(std::size_t queue_depth,
                                                std::size_t workers) const noexcept;

  /// How many samples record_service_ns has folded in (observability).
  [[nodiscard]] std::uint64_t samples() const noexcept;

 private:
  double alpha_;
  /// EWMA of service time in ns, stored as the bit pattern of a double so
  /// one atomic word carries it; updated by CAS (see file comment).
  std::atomic<std::uint64_t> ewma_bits_;
  std::atomic<std::uint64_t> samples_;
};

}  // namespace shmd::admit
