#include "hmd/space_exploration.hpp"

#include <stdexcept>

#include "eval/metrics.hpp"

namespace shmd::hmd {

SpaceExplorationResult explore_error_rate(const trace::Dataset& dataset,
                                          std::span<const std::size_t> validation_indices,
                                          const nn::Network& net, trace::FeatureConfig config,
                                          const SpaceExplorationOptions& options) {
  if (validation_indices.empty()) {
    throw std::invalid_argument("explore_error_rate: empty validation set");
  }
  if (options.candidates.empty()) {
    throw std::invalid_argument("explore_error_rate: no candidate error rates");
  }
  if (options.repeats <= 0) {
    throw std::invalid_argument("explore_error_rate: repeats must be positive");
  }

  StochasticHmd probe(net, config, 0.0, faultsim::BitFaultDistribution::measured(),
                      options.noise_seed);

  const auto accuracy_at = [&](double er, int repeats) {
    probe.set_error_rate(er);
    eval::ConfusionMatrix cm;
    for (int rep = 0; rep < repeats; ++rep) {
      for (std::size_t idx : validation_indices) {
        const trace::ProgramSample& sample = dataset.samples().at(idx);
        cm.add(sample.malware(), probe.detect(sample.features));
      }
    }
    return cm.accuracy();
  };

  SpaceExplorationResult result;
  result.baseline_accuracy = accuracy_at(0.0, 1);
  result.error_rate = 0.0;
  result.selected_accuracy = result.baseline_accuracy;

  for (double er : options.candidates) {
    const double acc = accuracy_at(er, options.repeats);
    result.candidate_accuracy.push_back(acc);
    if (result.baseline_accuracy - acc <= options.max_accuracy_loss &&
        er > result.error_rate) {
      result.error_rate = er;
      result.selected_accuracy = acc;
    }
  }
  return result;
}

}  // namespace shmd::hmd
