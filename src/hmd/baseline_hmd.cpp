#include "hmd/baseline_hmd.hpp"

namespace shmd::hmd {

BaselineHmd::BaselineHmd(nn::Network net, trace::FeatureConfig config)
    : net_(std::move(net)), config_(config) {}

std::vector<double> BaselineHmd::window_scores_nominal(
    const trace::FeatureSet& features) const {
  std::vector<double> scores;
  for (const std::vector<double>& window : features.windows(config_)) {
    scores.push_back(net_.forward(window)[0]);
  }
  return scores;
}

std::vector<double> BaselineHmd::window_scores(const trace::FeatureSet& features) {
  return window_scores_nominal(features);  // deterministic detector
}

}  // namespace shmd::hmd
