#include "hmd/rhmd.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace shmd::hmd {

namespace {
using trace::FeatureConfig;
using trace::FeatureView;
}  // namespace

RhmdConstruction rhmd_2f(std::size_t period) {
  return {"rhmd-2f",
          {FeatureConfig{FeatureView::kInsnCategory, period},
           FeatureConfig{FeatureView::kMemory, period}}};
}

RhmdConstruction rhmd_3f(std::size_t period) {
  return {"rhmd-3f",
          {FeatureConfig{FeatureView::kInsnCategory, period},
           FeatureConfig{FeatureView::kMemory, period},
           FeatureConfig{FeatureView::kControlFlow, period}}};
}

RhmdConstruction rhmd_2f2p(std::size_t period_a, std::size_t period_b) {
  return {"rhmd-2f2p",
          {FeatureConfig{FeatureView::kInsnCategory, period_a},
           FeatureConfig{FeatureView::kMemory, period_a},
           FeatureConfig{FeatureView::kInsnCategory, period_b},
           FeatureConfig{FeatureView::kMemory, period_b}}};
}

RhmdConstruction rhmd_3f2p(std::size_t period_a, std::size_t period_b) {
  return {"rhmd-3f2p",
          {FeatureConfig{FeatureView::kInsnCategory, period_a},
           FeatureConfig{FeatureView::kMemory, period_a},
           FeatureConfig{FeatureView::kControlFlow, period_a},
           FeatureConfig{FeatureView::kInsnCategory, period_b},
           FeatureConfig{FeatureView::kMemory, period_b},
           FeatureConfig{FeatureView::kControlFlow, period_b}}};
}

Rhmd::Rhmd(std::string name, std::vector<Base> bases, std::uint64_t switch_seed)
    : name_(std::move(name)), bases_(std::move(bases)), switch_gen_(switch_seed) {
  if (bases_.empty()) throw std::invalid_argument("Rhmd: need >= 1 base detector");
  for (const Base& b : bases_) epoch_period_ = std::max(epoch_period_, b.config.period);
  for (const Base& b : bases_) {
    if (epoch_period_ % b.config.period != 0) {
      throw std::invalid_argument("Rhmd: base periods must nest within the largest period");
    }
  }
}

void Rhmd::jump_switch_stream(std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) switch_gen_.jump();
}

double Rhmd::base_epoch_score(const Base& b, const trace::FeatureSet& features,
                              std::size_t epoch) const {
  const auto& windows = features.windows(b.config);
  const std::size_t per_epoch = epoch_period_ / b.config.period;
  const std::size_t first = epoch * per_epoch;
  if (first + per_epoch > windows.size()) {
    throw std::out_of_range("Rhmd: epoch outside available windows");
  }
  double sum = 0.0;
  for (std::size_t k = 0; k < per_epoch; ++k) {
    sum += b.net.forward(windows[first + k])[0];
  }
  return sum / static_cast<double>(per_epoch);
}

std::vector<double> Rhmd::window_scores(const trace::FeatureSet& features) {
  // Epoch count: limited by the base with the fewest nested windows.
  std::size_t epochs = std::numeric_limits<std::size_t>::max();
  for (const Base& b : bases_) {
    const std::size_t per_epoch = epoch_period_ / b.config.period;
    epochs = std::min(epochs, features.windows(b.config).size() / per_epoch);
  }
  std::vector<double> scores;
  scores.reserve(epochs);
  for (std::size_t e = 0; e < epochs; ++e) {
    const std::size_t pick = switch_gen_.below(bases_.size());
    scores.push_back(base_epoch_score(bases_[pick], features, e));
  }
  return scores;
}

std::vector<double> Rhmd::window_scores_nominal(const trace::FeatureSet& features) const {
  std::size_t epochs = std::numeric_limits<std::size_t>::max();
  for (const Base& b : bases_) {
    const std::size_t per_epoch = epoch_period_ / b.config.period;
    epochs = std::min(epochs, features.windows(b.config).size() / per_epoch);
  }
  std::vector<double> scores;
  scores.reserve(epochs);
  for (std::size_t e = 0; e < epochs; ++e) {
    double sum = 0.0;
    for (const Base& b : bases_) sum += base_epoch_score(b, features, e);
    scores.push_back(sum / static_cast<double>(bases_.size()));
  }
  return scores;
}

}  // namespace shmd::hmd
