// EnsembleHmd: the specialized-ensemble baseline of the paper's lineage
// (EnsembleHMD, Khasawneh et al. RAID'15 / IEEE TDSC'18 — refs [21],[22]).
//
// Instead of one general detector, train one *specialized* detector per
// malware type (its type's malware vs all benign) plus a general detector,
// and flag a window when ANY member crosses its threshold. Specialization
// raises per-type sensitivity; the max-combination controls how much FPR
// that costs. Unlike RHMD the ensemble is deterministic — it improves
// accuracy, not evasion resilience — which is exactly the contrast the
// comparison bench draws.
#pragma once

#include <string>
#include <vector>

#include "hmd/detector.hpp"
#include "hmd/train.hpp"
#include "nn/network.hpp"
#include "trace/families.hpp"

namespace shmd::hmd {

class EnsembleHmd final : public Detector {
 public:
  struct Member {
    std::string label;      ///< "general" or the specialized malware family
    nn::Network net;
  };

  EnsembleHmd(std::vector<Member> members, trace::FeatureConfig config);

  [[nodiscard]] std::vector<double> window_scores(const trace::FeatureSet& features) override;
  [[nodiscard]] std::vector<double> window_scores_nominal(
      const trace::FeatureSet& features) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "ensemble-hmd"; }

  [[nodiscard]] std::size_t member_count() const noexcept { return members_.size(); }
  [[nodiscard]] const Member& member(std::size_t i) const { return members_.at(i); }

 private:
  std::vector<Member> members_;
  trace::FeatureConfig config_;
};

/// Train the RAID'15-style ensemble: one general detector over all
/// malware, plus one specialized detector per malware family present in
/// `train_indices` (that family's malware vs all benign).
[[nodiscard]] EnsembleHmd make_ensemble(const trace::Dataset& dataset,
                                        std::span<const std::size_t> train_indices,
                                        trace::FeatureConfig config,
                                        const HmdTrainOptions& options = {});

}  // namespace shmd::hmd
