// Detector training harness: dataset folds → trained HMD networks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/network.hpp"
#include "nn/trainer.hpp"
#include "trace/dataset.hpp"

namespace shmd::hmd {

struct HmdTrainOptions {
  /// Hidden-layer widths; the input width comes from the feature view and
  /// the output is a single sigmoid unit.
  std::vector<std::size_t> hidden = {32, 16};
  /// Default L2 is deliberately non-trivial: it keeps the window scores
  /// soft (unsaturated) the way a model trained on real, noisy HMD data
  /// is. Over-regularizing costs ~1% window accuracy; under-regularizing
  /// saturates scores at 0/1 and makes the detector artificially immune
  /// to undervolting noise.
  // Class weighting stays OFF for the detectors: the 5:1 corpus pushes the
  // boundary toward the benign side, buying near-zero FNR at a benign FPR
  // in the tens of percent per window — the recall-heavy operating point an
  // always-on malware monitor wants, and (not coincidentally) the one that
  // keeps crafted evasive samples pinned against a boundary the stochastic
  // noise sweeps across. Balancing is available in nn::TrainConfig as an
  // explicit knob.
  nn::TrainConfig train = [] {
    nn::TrainConfig c;
    c.l2 = 3e-4;
    return c;
  }();
  /// Fraction of the training windows held out for early stopping.
  double validation_fraction = 0.1;
  std::uint64_t seed = 0x7124111ULL;
};

/// Train one window-classifier network on the windows of `train_indices`
/// under feature configuration `config`.
[[nodiscard]] nn::Network train_hmd_network(const trace::Dataset& dataset,
                                            std::span<const std::size_t> train_indices,
                                            trace::FeatureConfig config,
                                            const HmdTrainOptions& options = {});

}  // namespace shmd::hmd
