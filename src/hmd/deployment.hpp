// Deployment bundles: everything a device needs to run a Stochastic-HMD.
//
// The deployment story split across the paper: the *model* is trained once
// (factory side, nominal voltage), while the *operating point* is per
// device and per temperature (§IX calibration). A bundle packages the
// trained network (in FANN interchange format, so a stock FANN runtime
// could load it too), the feature configuration, the target error rate
// from space exploration, and the device's temperature→offset calibration
// table — one artifact to flash.
#pragma once

#include <iosfwd>
#include <map>

#include "hmd/stochastic_hmd.hpp"
#include "nn/network.hpp"

namespace shmd::hmd {

struct DeploymentBundle {
  nn::Network network;
  trace::FeatureConfig feature_config;
  /// Operating error rate selected by space exploration (§VI).
  double target_error_rate = 0.1;
  /// Per-device calibration: die temperature (°C) → undervolt offset (mV).
  std::map<double, double> calibration;

  /// Instantiate the detector in direct-er mode (the voltage-driven mode
  /// binds a VoltageDomain separately via attach_domain()).
  [[nodiscard]] StochasticHmd make_detector(std::uint64_t noise_seed = 0x570C4ULL) const;

  /// Offset for `temp_c`: piecewise-linear interpolation between the two
  /// surrounding table entries (an exact-key hit returns that entry's
  /// offset); outside the table's range, clamps to the nearest endpoint.
  /// Throws std::logic_error on an empty table.
  [[nodiscard]] double offset_for_temperature(double temp_c) const;
};

/// Serialize/parse a bundle (text; embeds the network as FANN_FLO_2.1).
void save_deployment(const DeploymentBundle& bundle, std::ostream& os);
[[nodiscard]] DeploymentBundle load_deployment(std::istream& is);

}  // namespace shmd::hmd
