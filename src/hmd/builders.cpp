#include "hmd/builders.hpp"

namespace shmd::hmd {

BaselineHmd make_baseline(const trace::Dataset& dataset,
                          std::span<const std::size_t> train_indices,
                          trace::FeatureConfig config, const HmdTrainOptions& options) {
  return BaselineHmd(train_hmd_network(dataset, train_indices, config, options), config);
}

StochasticHmd make_stochastic(const trace::Dataset& dataset,
                              std::span<const std::size_t> train_indices,
                              trace::FeatureConfig config, double error_rate,
                              const HmdTrainOptions& options) {
  return StochasticHmd(train_hmd_network(dataset, train_indices, config, options), config,
                       error_rate);
}

Rhmd make_rhmd(const trace::Dataset& dataset, std::span<const std::size_t> train_indices,
               const RhmdConstruction& construction, const HmdTrainOptions& options,
               std::uint64_t switch_seed) {
  std::vector<Rhmd::Base> bases;
  bases.reserve(construction.configs.size());
  std::size_t base_idx = 0;
  for (const trace::FeatureConfig& config : construction.configs) {
    // Per-base seed offset: RHMD's strength comes from *diverse* base
    // detectors, so each gets a distinct initialization.
    HmdTrainOptions opt = options;
    opt.seed = options.seed + 0x9E37 * (++base_idx);
    bases.push_back(Rhmd::Base{config, train_hmd_network(dataset, train_indices, config, opt)});
  }
  return Rhmd(construction.name, std::move(bases), switch_seed);
}

}  // namespace shmd::hmd
