#include "hmd/train.hpp"

#include <stdexcept>

#include "eval/data_adapter.hpp"
#include "rng/xoshiro256ss.hpp"

namespace shmd::hmd {

nn::Network train_hmd_network(const trace::Dataset& dataset,
                              std::span<const std::size_t> train_indices,
                              trace::FeatureConfig config, const HmdTrainOptions& options) {
  std::vector<nn::TrainSample> samples =
      eval::window_samples(dataset, train_indices, config);
  if (samples.empty()) throw std::invalid_argument("train_hmd_network: no training windows");

  // Shuffle once, then carve off the validation tail.
  rng::Xoshiro256ss gen(options.seed ^ 0xDA7A5E7ULL);
  for (std::size_t i = samples.size(); i > 1; --i) {
    std::swap(samples[i - 1], samples[gen.below(i)]);
  }
  // shmd-lint: exact-ok(validation-split sizing, training only)
  auto n_val = static_cast<std::size_t>(static_cast<double>(samples.size()) *
                                        options.validation_fraction);
  if (n_val >= samples.size()) n_val = 0;
  const std::span<const nn::TrainSample> all(samples);
  const auto train_span = all.subspan(0, samples.size() - n_val);
  const auto val_span = all.subspan(samples.size() - n_val);

  std::vector<std::size_t> topology;
  topology.push_back(trace::view_dim(config.view));
  topology.insert(topology.end(), options.hidden.begin(), options.hidden.end());
  topology.push_back(1);

  nn::Network net(topology, nn::Activation::kSigmoid, nn::Activation::kSigmoid, options.seed);
  nn::Trainer trainer(options.train);
  trainer.fit(net, train_span, val_span);
  return net;
}

}  // namespace shmd::hmd
