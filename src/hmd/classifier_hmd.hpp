// ClassifierHmd: an HMD backed by any nn::Classifier.
//
// The paper's victims are FANN MLPs, but its related-work lineage includes
// detectors built on non-differentiable models — ND-HMDs [14] use exactly
// that as the defense ("DT for its non-differentiability", §VII.A, applies
// to victims too). Wrapping the common Classifier interface lets decision
// trees and logistic models serve as complete detectors, so the bench
// suite can compare the paper's stochastic defense against the
// non-differentiability defense on equal footing.
#pragma once

#include <memory>
#include <string>

#include "hmd/detector.hpp"
#include "nn/classifier.hpp"

namespace shmd::hmd {

class ClassifierHmd final : public Detector {
 public:
  ClassifierHmd(std::unique_ptr<nn::Classifier> model, trace::FeatureConfig config,
                std::string name);

  [[nodiscard]] std::vector<double> window_scores(const trace::FeatureSet& features) override;
  [[nodiscard]] std::vector<double> window_scores_nominal(
      const trace::FeatureSet& features) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }

  [[nodiscard]] const nn::Classifier& model() const noexcept { return *model_; }
  [[nodiscard]] trace::FeatureConfig feature_config() const noexcept { return config_; }

 private:
  std::unique_ptr<nn::Classifier> model_;
  trace::FeatureConfig config_;
  std::string name_;
};

}  // namespace shmd::hmd
