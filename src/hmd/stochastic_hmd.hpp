// StochasticHmd — the paper's contribution.
//
// The same trained network as the baseline HMD (no retraining, no model
// changes), but inference runs on an undervolted core: every MAC product
// passes through the stochastic fault injector, making the decision
// boundary time-variant — a moving-target defense implemented purely in
// the supply voltage.
//
// Two operating modes:
//   * direct error rate  — the paper's space-exploration knob (§VI): er is
//     set explicitly on the injector;
//   * voltage-driven     — the deployment path (§III): the detector is
//     bound to a per-core VoltageDomain under exclusive (trusted) control;
//     each detection enters an RAII undervolt window at the calibrated
//     offset, derives er from the domain's fault model at the current
//     temperature, and restores nominal voltage afterwards (the TEE
//     enter/exit pattern of §IX).
#pragma once

#include <optional>

#include "faultsim/fault_injector.hpp"
#include "hmd/detector.hpp"
#include "nn/arithmetic.hpp"
#include "nn/network.hpp"
#include "volt/voltage_domain.hpp"

namespace shmd::hmd {

class StochasticHmd final : public Detector {
 public:
  /// Direct-er mode.
  StochasticHmd(nn::Network net, trace::FeatureConfig config, double error_rate,
                faultsim::BitFaultDistribution distribution =
                    faultsim::BitFaultDistribution::measured(),
                std::uint64_t noise_seed = 0x570C4ULL);

  /// Bind to a voltage domain: subsequent detections run inside an
  /// UndervoltGuard at `offset_mv` and derive the error rate from the
  /// domain's fault model. `token` is the exclusive-control token if the
  /// rail is claimed (§III Trusted control).
  void attach_domain(volt::VoltageDomain& domain, double offset_mv,
                     std::optional<std::uint64_t> token = std::nullopt);
  void detach_domain() noexcept;
  [[nodiscard]] bool voltage_driven() const noexcept { return domain_ != nullptr; }

  /// Space-exploration knob (only meaningful in direct-er mode).
  void set_error_rate(double er);
  [[nodiscard]] double error_rate() const noexcept { return injector_.error_rate(); }

  [[nodiscard]] std::vector<double> window_scores(const trace::FeatureSet& features) override;

  /// One LIVE score for a single feature window — the query primitive a
  /// white-box attacker gets (fresh fault noise per call; enters the
  /// undervolt window when voltage-driven).
  [[nodiscard]] double score_window(std::span<const double> window);
  [[nodiscard]] std::vector<double> window_scores_nominal(
      const trace::FeatureSet& features) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "stochastic-hmd"; }

  [[nodiscard]] const nn::Network& network() const noexcept { return net_; }
  [[nodiscard]] trace::FeatureConfig feature_config() const noexcept { return config_; }
  [[nodiscard]] const faultsim::FaultStats& fault_stats() const noexcept {
    return injector_.stats();
  }
  /// Bit-location distribution of the injected faults (the batch runtime
  /// replicates it into its per-worker injectors).
  [[nodiscard]] const faultsim::BitFaultDistribution& fault_distribution() const noexcept {
    return injector_.distribution();
  }

 private:
  nn::Network net_;
  trace::FeatureConfig config_;
  faultsim::FaultInjector injector_;
  nn::ForwardScratch scratch_;  ///< reused activations: zero-alloc hot loop
  volt::VoltageDomain* domain_ = nullptr;
  double offset_mv_ = 0.0;
  std::optional<std::uint64_t> token_;
};

}  // namespace shmd::hmd
