// BaselineHmd: the undefended detector — one trained network, exact
// arithmetic at nominal voltage. This is the victim the paper's attacks
// reverse-engineer with 99% effectiveness and evade with 84% success.
#pragma once

#include "hmd/detector.hpp"
#include "nn/network.hpp"

namespace shmd::hmd {

class BaselineHmd final : public Detector {
 public:
  BaselineHmd(nn::Network net, trace::FeatureConfig config);

  [[nodiscard]] std::vector<double> window_scores(const trace::FeatureSet& features) override;

  /// Score a single feature window (deterministic).
  [[nodiscard]] double score_window(std::span<const double> window) const {
    return net_.forward(window)[0];
  }
  [[nodiscard]] std::vector<double> window_scores_nominal(
      const trace::FeatureSet& features) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "baseline-hmd"; }

  [[nodiscard]] const nn::Network& network() const noexcept { return net_; }
  [[nodiscard]] trace::FeatureConfig feature_config() const noexcept { return config_; }

 private:
  nn::Network net_;
  trace::FeatureConfig config_;
};

}  // namespace shmd::hmd
