// RHMD — the state-of-the-art randomization baseline (Khasawneh et al.,
// MICRO'17) the paper compares against in §VII.C/§VIII.
//
// An RHMD keeps several *diverse* base detectors resident (trained on
// different feature vectors and/or detection periods) and, at every
// decision epoch, picks one uniformly at random. The paper evaluates four
// constructions: RHMD-2F, RHMD-3F (two/three feature vectors), and
// RHMD-2F2P, RHMD-3F2P (the same crossed with two detection periods).
//
// Epoch handling: the decision epoch is the construction's largest period;
// a selected base detector whose period is shorter scores all of its
// windows inside the epoch and averages them. (Periods must nest, which
// the provided constructions satisfy.)
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "hmd/detector.hpp"
#include "nn/network.hpp"
#include "rng/xoshiro256ss.hpp"

namespace shmd::hmd {

/// Which base detectors an RHMD construction trains.
struct RhmdConstruction {
  std::string name;
  std::vector<trace::FeatureConfig> configs;
};

/// The paper's four constructions (§VII.C), parameterized by the dataset's
/// two detection periods.
[[nodiscard]] RhmdConstruction rhmd_2f(std::size_t period);
[[nodiscard]] RhmdConstruction rhmd_3f(std::size_t period);
[[nodiscard]] RhmdConstruction rhmd_2f2p(std::size_t period_a, std::size_t period_b);
[[nodiscard]] RhmdConstruction rhmd_3f2p(std::size_t period_a, std::size_t period_b);

class Rhmd final : public Detector {
 public:
  struct Base {
    trace::FeatureConfig config;
    nn::Network net;
  };

  Rhmd(std::string name, std::vector<Base> bases, std::uint64_t switch_seed = 0x124D5ULL);

  [[nodiscard]] std::vector<double> window_scores(const trace::FeatureSet& features) override;
  [[nodiscard]] std::vector<double> window_scores_nominal(
      const trace::FeatureSet& features) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }

  [[nodiscard]] std::size_t n_base_detectors() const noexcept { return bases_.size(); }
  [[nodiscard]] const Base& base(std::size_t i) const { return bases_.at(i); }
  [[nodiscard]] std::size_t epoch_period() const noexcept { return epoch_period_; }

  /// Advance the epoch-switch RNG by `n` jump() steps (each skips 2^128
  /// draws). The batch runtime copies this detector per worker and jumps
  /// each replica a distinct number of times, giving the replicas
  /// non-overlapping switching streams.
  void jump_switch_stream(std::size_t n) noexcept;

 private:
  /// Score of base `b` over epoch `epoch` (averaging nested windows).
  [[nodiscard]] double base_epoch_score(const Base& b, const trace::FeatureSet& features,
                                        std::size_t epoch) const;

  std::string name_;
  std::vector<Base> bases_;
  std::size_t epoch_period_ = 0;
  rng::Xoshiro256ss switch_gen_;
};

}  // namespace shmd::hmd
