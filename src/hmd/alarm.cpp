#include "hmd/alarm.hpp"

namespace shmd::hmd {

AlarmPolicy::AlarmPolicy(AlarmPolicyConfig config) : config_(config) {
  if (config_.window == 0) throw std::invalid_argument("AlarmPolicy: window must be > 0");
  if (config_.threshold == 0 || config_.threshold > config_.window) {
    throw std::invalid_argument("AlarmPolicy: threshold must be in [1, window]");
  }
}

bool AlarmPolicy::observe(bool flagged) {
  ++rounds_;
  history_.push_back(flagged);
  flagged_in_window_ += flagged;
  if (history_.size() > config_.window) {
    flagged_in_window_ -= history_.front();
    history_.pop_front();
  }

  if (cooldown_left_ > 0) {
    --cooldown_left_;
    return false;
  }
  if (flagged_in_window_ >= config_.threshold) {
    ++alarms_;
    cooldown_left_ = config_.cooldown;
    // Restart evidence collection after an alarm: stale rounds should not
    // immediately re-trigger once the cooldown expires.
    history_.clear();
    flagged_in_window_ = 0;
    return true;
  }
  return false;
}

void AlarmPolicy::reset() {
  history_.clear();
  flagged_in_window_ = 0;
  cooldown_left_ = 0;
  alarms_ = 0;
  rounds_ = 0;
}

}  // namespace shmd::hmd
