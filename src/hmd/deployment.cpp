#include "hmd/deployment.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "nn/fann_io.hpp"

namespace shmd::hmd {

StochasticHmd DeploymentBundle::make_detector(std::uint64_t noise_seed) const {
  return StochasticHmd(network, feature_config, target_error_rate,
                       faultsim::BitFaultDistribution::measured(), noise_seed);
}

double DeploymentBundle::offset_for_temperature(double temp_c) const {
  if (calibration.empty()) {
    throw std::logic_error("DeploymentBundle: empty calibration table");
  }
  const auto above = calibration.lower_bound(temp_c);
  if (above == calibration.begin()) return above->second;        // below range: clamp
  if (above == calibration.end()) return std::prev(above)->second;  // above range: clamp
  const auto below = std::prev(above);
  const double t = (temp_c - below->first) / (above->first - below->first);
  // shmd-lint: exact-ok(calibration-table interpolation on the control plane)
  return below->second + t * (above->second - below->second);
}

void save_deployment(const DeploymentBundle& bundle, std::ostream& os) {
  os << "SHMD-DEPLOYMENT 1\n";
  os << "view " << trace::view_name(bundle.feature_config.view) << '\n';
  os << "period " << bundle.feature_config.period << '\n';
  os.precision(17);
  os << "target_error_rate " << bundle.target_error_rate << '\n';
  os << "calibration_points " << bundle.calibration.size() << '\n';
  for (const auto& [temp, offset] : bundle.calibration) {
    os << temp << ' ' << offset << '\n';
  }
  os << "network\n";
  nn::save_fann(bundle.network, os);
  if (!os) throw std::runtime_error("save_deployment: stream write failed");
}

DeploymentBundle load_deployment(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  if (!is || magic != "SHMD-DEPLOYMENT" || version != 1) {
    throw std::runtime_error("load_deployment: bad header");
  }

  DeploymentBundle bundle{nn::Network{}, trace::FeatureConfig{}, 0.1, {}};

  std::string key;
  while (is >> key) {
    if (key == "view") {
      std::string name;
      is >> name;
      bool found = false;
      for (std::size_t v = 0; v < trace::kNumViews; ++v) {
        const auto view = static_cast<trace::FeatureView>(v);
        if (trace::view_name(view) == name) {
          bundle.feature_config.view = view;
          found = true;
        }
      }
      if (!found) throw std::runtime_error("load_deployment: unknown view '" + name + "'");
    } else if (key == "period") {
      is >> bundle.feature_config.period;
    } else if (key == "target_error_rate") {
      is >> bundle.target_error_rate;
      if (bundle.target_error_rate < 0.0 || bundle.target_error_rate > 1.0) {
        throw std::runtime_error("load_deployment: target_error_rate out of range");
      }
    } else if (key == "calibration_points") {
      std::size_t n = 0;
      is >> n;
      for (std::size_t i = 0; i < n; ++i) {
        double temp = 0.0;
        double offset = 0.0;
        if (!(is >> temp >> offset)) {
          throw std::runtime_error("load_deployment: truncated calibration table");
        }
        bundle.calibration[temp] = offset;
      }
    } else if (key == "network") {
      is >> std::ws;  // the FANN text starts on the next line
      bundle.network = nn::load_fann(is);
      if (bundle.network.input_dim() != trace::view_dim(bundle.feature_config.view)) {
        throw std::runtime_error(
            "load_deployment: network input does not match the feature view");
      }
      return bundle;
    } else {
      throw std::runtime_error("load_deployment: unexpected key '" + key + "'");
    }
  }
  throw std::runtime_error("load_deployment: missing network section");
}

}  // namespace shmd::hmd
