// Detector: the common interface of all hardware malware detectors here
// (baseline HMD, Stochastic-HMD, RHMD).
//
// A detector consumes a program's extracted FeatureSet and emits one
// malware score per *decision epoch*. Epoch granularity is the detector's
// own (its detection period; for RHMD, the largest period in the
// construction). Program-level verdicts aggregate epoch decisions by
// majority vote — the standard HMD deployment where a program is flagged
// once most of its observation windows look malicious.
//
// Two score paths exist deliberately:
//   window_scores()          — live behavior, possibly stochastic (this is
//                              what an attacker querying the HMD sees);
//   window_scores_nominal()  — the noise-free reference boundary, used by
//                              the evaluation to measure how well a
//                              reverse-engineered proxy captured the
//                              victim's underlying model.
#pragma once

#include <string_view>
#include <vector>

#include "trace/dataset.hpp"

namespace shmd::hmd {

class Detector {
 public:
  virtual ~Detector() = default;

  /// Live per-epoch malware scores (stochastic detectors consume RNG
  /// state, hence non-const).
  [[nodiscard]] virtual std::vector<double> window_scores(
      const trace::FeatureSet& features) = 0;

  /// Noise-free reference scores of the underlying model.
  [[nodiscard]] virtual std::vector<double> window_scores_nominal(
      const trace::FeatureSet& features) const = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Program-level verdict for ONE detection round: true (malware) when at
  /// least `vote_fraction` of the epoch scores cross `threshold` (majority
  /// vote by default).
  ///
  /// HMDs are "always on": a monitored program is re-classified round
  /// after round for as long as it runs. One call to detect() is one such
  /// round. Deterministic detectors return the same verdict every round;
  /// for stochastic detectors each round samples a fresh boundary — the
  /// security evaluation exploits exactly that (an evasive sample must win
  /// every round, the defender only once).
  [[nodiscard]] bool detect(const trace::FeatureSet& features, double threshold = 0.5,
                            double vote_fraction = kDefaultVoteFraction);

  /// Mean live epoch score (the "confidence" Fig. 2(b) histograms).
  [[nodiscard]] double program_score(const trace::FeatureSet& features);

  static constexpr double kDefaultVoteFraction = 0.50;
};

/// Shared helper: true when >= `vote_fraction` of `scores` reach `threshold`.
[[nodiscard]] bool fraction_vote(const std::vector<double>& scores, double threshold,
                                 double vote_fraction);

}  // namespace shmd::hmd
