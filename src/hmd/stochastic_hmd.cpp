#include "hmd/stochastic_hmd.hpp"

namespace shmd::hmd {

namespace {

/// Restores the injector's configured (direct-er) rate when a
/// domain-driven detection burst ends. Without this, the last
/// domain-derived rate silently survives detach_domain() and later
/// direct-er scoring runs at the wrong physical operating point.
/// Exception-safe by construction: the guard unwinds even when the rail
/// rejects the offset mid-burst.
class ErrorRateRestorer {
 public:
  explicit ErrorRateRestorer(faultsim::FaultInjector& injector)
      : injector_(injector), saved_(injector.error_rate()) {}
  ~ErrorRateRestorer() { injector_.set_error_rate(saved_); }
  ErrorRateRestorer(const ErrorRateRestorer&) = delete;
  ErrorRateRestorer& operator=(const ErrorRateRestorer&) = delete;

 private:
  faultsim::FaultInjector& injector_;
  double saved_;
};

}  // namespace

StochasticHmd::StochasticHmd(nn::Network net, trace::FeatureConfig config, double error_rate,
                             faultsim::BitFaultDistribution distribution,
                             std::uint64_t noise_seed)
    : net_(std::move(net)),
      config_(config),
      injector_(error_rate, distribution, noise_seed) {}

void StochasticHmd::attach_domain(volt::VoltageDomain& domain, double offset_mv,
                                  std::optional<std::uint64_t> token) {
  domain_ = &domain;
  offset_mv_ = offset_mv;
  token_ = token;
}

void StochasticHmd::detach_domain() noexcept {
  domain_ = nullptr;
  offset_mv_ = 0.0;
  token_.reset();
}

void StochasticHmd::set_error_rate(double er) { injector_.set_error_rate(er); }

std::vector<double> StochasticHmd::window_scores(const trace::FeatureSet& features) {
  std::vector<double> scores;
  nn::FaultyContext faulty(injector_);
  if (domain_ != nullptr) {
    // Deployment path: undervolt for exactly the duration of this
    // detection burst (TEE enter/exit semantics), with the error rate
    // derived from the physical operating point — and the configured
    // direct-er rate restored when the burst ends.
    const ErrorRateRestorer restore(injector_);
    volt::UndervoltGuard guard(*domain_, offset_mv_, token_);
    injector_.set_error_rate(domain_->error_rate());
    const auto& windows = features.windows(config_);
    scores.reserve(windows.size());
    for (const std::vector<double>& window : windows) {
      scores.push_back(net_.forward(window, faulty, scratch_)[0]);
    }
    return scores;  // guard restores nominal voltage here
  }
  const auto& windows = features.windows(config_);
  scores.reserve(windows.size());
  for (const std::vector<double>& window : windows) {
    scores.push_back(net_.forward(window, faulty, scratch_)[0]);
  }
  return scores;
}

double StochasticHmd::score_window(std::span<const double> window) {
  nn::FaultyContext faulty(injector_);
  if (domain_ != nullptr) {
    const ErrorRateRestorer restore(injector_);
    volt::UndervoltGuard guard(*domain_, offset_mv_, token_);
    injector_.set_error_rate(domain_->error_rate());
    return net_.forward(window, faulty, scratch_)[0];
  }
  return net_.forward(window, faulty, scratch_)[0];
}

std::vector<double> StochasticHmd::window_scores_nominal(
    const trace::FeatureSet& features) const {
  std::vector<double> scores;
  for (const std::vector<double>& window : features.windows(config_)) {
    scores.push_back(net_.forward(window)[0]);
  }
  return scores;
}

}  // namespace shmd::hmd
