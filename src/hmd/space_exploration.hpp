// Space exploration (§VI): select the Stochastic-HMD operating point.
//
// "we identify the undervolting level that would result in the minimal to
//  no accuracy loss under no evasion attack, while maximizing the
//  robustness to evasive malware."
//
// Robustness grows monotonically with the error rate while accuracy decays
// slowly then sharply (Fig. 2a/8), so the optimal point is the DEEPEST
// error rate whose measured accuracy loss stays within the defender's
// budget. How much noise a given model tolerates depends on how saturated
// its scores are — hence this is a per-deployment calibration, run by the
// defender on its own validation data, exactly like the per-device voltage
// calibration of §IX.
#pragma once

#include <span>
#include <vector>

#include "hmd/stochastic_hmd.hpp"
#include "trace/dataset.hpp"

namespace shmd::hmd {

struct SpaceExplorationOptions {
  /// Maximum tolerated accuracy loss relative to the fault-free detector.
  double max_accuracy_loss = 0.02;
  /// Candidate error rates, swept in order; the deepest admissible wins.
  std::vector<double> candidates = {0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5};
  /// Stochastic repeats per candidate (accuracy is a random variable).
  int repeats = 3;
  std::uint64_t noise_seed = 0x5E1EC7ULL;
};

struct SpaceExplorationResult {
  double error_rate = 0.0;          ///< selected operating point
  double baseline_accuracy = 0.0;   ///< fault-free accuracy on the validation set
  double selected_accuracy = 0.0;   ///< mean accuracy at the selected er
  /// Mean accuracy per candidate (parallel to options.candidates).
  std::vector<double> candidate_accuracy;
};

/// Run the exploration for `net` on the defender's own programs
/// (`validation_indices`) and return the selected operating point.
[[nodiscard]] SpaceExplorationResult explore_error_rate(
    const trace::Dataset& dataset, std::span<const std::size_t> validation_indices,
    const nn::Network& net, trace::FeatureConfig config,
    const SpaceExplorationOptions& options = {});

}  // namespace shmd::hmd
