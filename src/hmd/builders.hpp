// Convenience builders: dataset folds → ready-to-run detectors.
// Shared by the bench harnesses, the examples, and the integration tests.
#pragma once

#include <memory>

#include "hmd/baseline_hmd.hpp"
#include "hmd/rhmd.hpp"
#include "hmd/stochastic_hmd.hpp"
#include "hmd/train.hpp"

namespace shmd::hmd {

/// Train a baseline HMD on `train_indices`.
[[nodiscard]] BaselineHmd make_baseline(const trace::Dataset& dataset,
                                        std::span<const std::size_t> train_indices,
                                        trace::FeatureConfig config,
                                        const HmdTrainOptions& options = {});

/// Train the underlying model once and wrap it as a Stochastic-HMD at
/// `error_rate`. Per the paper, the model is exactly the baseline's — no
/// retraining for the defense.
[[nodiscard]] StochasticHmd make_stochastic(const trace::Dataset& dataset,
                                            std::span<const std::size_t> train_indices,
                                            trace::FeatureConfig config, double error_rate,
                                            const HmdTrainOptions& options = {});

/// Train every base detector of `construction` and assemble the RHMD.
[[nodiscard]] Rhmd make_rhmd(const trace::Dataset& dataset,
                             std::span<const std::size_t> train_indices,
                             const RhmdConstruction& construction,
                             const HmdTrainOptions& options = {},
                             std::uint64_t switch_seed = 0x124D5ULL);

}  // namespace shmd::hmd
