#include "hmd/ensemble_hmd.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace shmd::hmd {

EnsembleHmd::EnsembleHmd(std::vector<Member> members, trace::FeatureConfig config)
    : members_(std::move(members)), config_(config) {
  if (members_.empty()) throw std::invalid_argument("EnsembleHmd: need >= 1 member");
}

std::vector<double> EnsembleHmd::window_scores_nominal(
    const trace::FeatureSet& features) const {
  const auto& windows = features.windows(config_);
  std::vector<double> scores(windows.size(), 0.0);
  for (std::size_t w = 0; w < windows.size(); ++w) {
    double worst = 0.0;
    for (const Member& member : members_) {
      worst = std::max(worst, member.net.forward(windows[w])[0]);
    }
    scores[w] = worst;  // any-member-flags combination
  }
  return scores;
}

std::vector<double> EnsembleHmd::window_scores(const trace::FeatureSet& features) {
  return window_scores_nominal(features);  // deterministic ensemble
}

EnsembleHmd make_ensemble(const trace::Dataset& dataset,
                          std::span<const std::size_t> train_indices,
                          trace::FeatureConfig config, const HmdTrainOptions& options) {
  std::vector<EnsembleHmd::Member> members;

  // General detector: everything.
  members.push_back(EnsembleHmd::Member{
      "general", train_hmd_network(dataset, train_indices, config, options)});

  // Which malware families does the training fold contain?
  std::set<trace::Family> families;
  for (std::size_t idx : train_indices) {
    const auto& sample = dataset.samples().at(idx);
    if (sample.malware()) families.insert(sample.program.family());
  }

  // One specialized detector per family: that family's malware vs benign.
  std::size_t member_idx = 0;
  for (trace::Family family : families) {
    std::vector<std::size_t> subset;
    for (std::size_t idx : train_indices) {
      const auto& sample = dataset.samples().at(idx);
      if (!sample.malware() || sample.program.family() == family) subset.push_back(idx);
    }
    HmdTrainOptions opt = options;
    opt.seed = options.seed + 0xE25 * (++member_idx);
    members.push_back(EnsembleHmd::Member{
        std::string(trace::family_name(family)),
        train_hmd_network(dataset, subset, config, opt)});
  }
  return EnsembleHmd(std::move(members), config);
}

}  // namespace shmd::hmd
