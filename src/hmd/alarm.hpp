// AlarmPolicy: turning per-round verdicts into operational alarms.
//
// The monitoring-horizon ablation shows the raw trade-off of an always-on
// stochastic detector: evasive malware is eventually caught because every
// round re-rolls the boundary, but benign false alarms accumulate over the
// same horizon. Deployments therefore do not page on a single flagged
// round — they require N flagged rounds within a sliding window of M
// (debouncing the stochastic flicker on benign programs while still
// accumulating evidence against borderline evasive samples), and apply a
// cooldown after each alarm.
#pragma once

#include <cstddef>
#include <deque>
#include <stdexcept>

namespace shmd::hmd {

struct AlarmPolicyConfig {
  /// Raise an alarm when >= `threshold` of the last `window` rounds were
  /// flagged.
  std::size_t threshold = 3;
  std::size_t window = 8;
  /// Rounds to suppress further alarms after raising one.
  std::size_t cooldown = 16;
};

class AlarmPolicy {
 public:
  explicit AlarmPolicy(AlarmPolicyConfig config = {});

  /// Feed one detection-round verdict; returns true when an alarm fires
  /// this round.
  bool observe(bool flagged);

  [[nodiscard]] std::size_t alarms_raised() const noexcept { return alarms_; }
  [[nodiscard]] std::size_t rounds_observed() const noexcept { return rounds_; }
  /// Flagged rounds currently inside the sliding window.
  [[nodiscard]] std::size_t flagged_in_window() const noexcept { return flagged_in_window_; }
  [[nodiscard]] bool in_cooldown() const noexcept { return cooldown_left_ > 0; }

  void reset();

 private:
  AlarmPolicyConfig config_;
  std::deque<bool> history_;
  std::size_t flagged_in_window_ = 0;
  std::size_t cooldown_left_ = 0;
  std::size_t alarms_ = 0;
  std::size_t rounds_ = 0;
};

}  // namespace shmd::hmd
