#include "hmd/classifier_hmd.hpp"

#include <stdexcept>

namespace shmd::hmd {

ClassifierHmd::ClassifierHmd(std::unique_ptr<nn::Classifier> model,
                             trace::FeatureConfig config, std::string name)
    : model_(std::move(model)), config_(config), name_(std::move(name)) {
  if (!model_) throw std::invalid_argument("ClassifierHmd: null model");
}

std::vector<double> ClassifierHmd::window_scores_nominal(
    const trace::FeatureSet& features) const {
  std::vector<double> scores;
  for (const std::vector<double>& window : features.windows(config_)) {
    scores.push_back(model_->predict(window));
  }
  return scores;
}

std::vector<double> ClassifierHmd::window_scores(const trace::FeatureSet& features) {
  return window_scores_nominal(features);  // deterministic model
}

}  // namespace shmd::hmd
