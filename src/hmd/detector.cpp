#include "hmd/detector.hpp"

#include <stdexcept>

namespace shmd::hmd {

bool fraction_vote(const std::vector<double>& scores, double threshold, double vote_fraction) {
  if (scores.empty()) throw std::invalid_argument("fraction_vote: no scores");
  if (vote_fraction <= 0.0 || vote_fraction > 1.0) {
    throw std::invalid_argument("fraction_vote: vote_fraction must be in (0, 1]");
  }
  std::size_t flagged = 0;
  for (double s : scores) {
    if (s >= threshold) ++flagged;
  }
  // shmd-lint: exact-ok(alarm-side vote arithmetic runs at nominal voltage)
  return static_cast<double>(flagged) >=
         vote_fraction * static_cast<double>(scores.size());
}

bool Detector::detect(const trace::FeatureSet& features, double threshold,
                      double vote_fraction) {
  return fraction_vote(window_scores(features), threshold, vote_fraction);
}

double Detector::program_score(const trace::FeatureSet& features) {
  const std::vector<double> scores = window_scores(features);
  if (scores.empty()) throw std::logic_error("program_score: no scores");
  double sum = 0.0;
  for (double s : scores) sum += s;
  return sum / static_cast<double>(scores.size());
}

}  // namespace shmd::hmd
