// Umbrella header: the public surface of the Stochastic-HMD library.
//
// Layering (each header is also usable on its own):
//
//   rng/, util/          leaf utilities (PRNGs, ApEn test, stats, tables)
//   faultsim/            the stochastic timing-fault injector (§II/§VI.A)
//   volt/                voltage domains, calibration, thermal governance
//   trace/               the program/trace/dataset substrate (§IV)
//   nn/                  networks, trainers, classifiers, FANN interchange
//   eval/                metrics, ROC, dataset adapters and CSV interchange
//   hmd/                 the detectors: baseline, Stochastic-HMD, RHMD,
//                        Ensemble-HMD, alarms, space exploration, bundles
//   runtime/             batched multi-threaded inference over the
//                        detectors (thread pool, per-worker RNG streams)
//   serve/               the always-on scoring service: bounded request
//                        queue, resident workers, epoch-swap moving target
//   attack/              the black-box evasion pipeline and white-box probe
//   net/                 the framed wire protocol, socket server, client
//   redteam/             end-to-end adaptive adversary campaigns against
//                        the live service (oracles, epoch rolling, fleets)
#pragma once

#include "attack/composite_proxy.hpp"
#include "attack/evasion.hpp"
#include "attack/oracle.hpp"
#include "attack/reverse_engineer.hpp"
#include "attack/transferability.hpp"
#include "attack/whitebox.hpp"
#include "eval/data_adapter.hpp"
#include "eval/dataset_io.hpp"
#include "eval/metrics.hpp"
#include "eval/roc.hpp"
#include "faultsim/bit_fault_distribution.hpp"
#include "faultsim/fault_injector.hpp"
#include "faultsim/faulty_alu.hpp"
#include "faultsim/fixed_point.hpp"
#include "hmd/alarm.hpp"
#include "hmd/baseline_hmd.hpp"
#include "hmd/builders.hpp"
#include "hmd/classifier_hmd.hpp"
#include "hmd/deployment.hpp"
#include "hmd/detector.hpp"
#include "hmd/ensemble_hmd.hpp"
#include "hmd/rhmd.hpp"
#include "hmd/space_exploration.hpp"
#include "hmd/stochastic_hmd.hpp"
#include "hmd/train.hpp"
#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "nn/activation.hpp"
#include "nn/arithmetic.hpp"
#include "nn/classifier.hpp"
#include "nn/decision_tree.hpp"
#include "nn/fann_io.hpp"
#include "nn/logistic_regression.hpp"
#include "nn/mlp_classifier.hpp"
#include "nn/network.hpp"
#include "nn/trainer.hpp"
#include "redteam/campaign.hpp"
#include "redteam/fleet.hpp"
#include "redteam/net_oracle.hpp"
#include "rng/entropy.hpp"
#include "rng/lgm_prng.hpp"
#include "rng/random_source.hpp"
#include "rng/splitmix64.hpp"
#include "rng/trng_sim.hpp"
#include "rng/xoshiro256ss.hpp"
#include "runtime/batch_scorer.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/epoch.hpp"
#include "serve/request_queue.hpp"
#include "serve/scoring_service.hpp"
#include "serve/service_stats.hpp"
#include "sys/energy_meter.hpp"
#include "sys/latency_model.hpp"
#include "sys/memory_model.hpp"
#include "sys/power_model.hpp"
#include "trace/dataset.hpp"
#include "trace/families.hpp"
#include "trace/features.hpp"
#include "trace/hpc_collector.hpp"
#include "trace/isa.hpp"
#include "trace/program.hpp"
#include "trace/program_factory.hpp"
#include "trace/trace_collector.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "volt/calibration.hpp"
#include "volt/cpu_package.hpp"
#include "volt/device_profile.hpp"
#include "volt/msr.hpp"
#include "volt/thermal_governor.hpp"
#include "volt/volt_fault_model.hpp"
#include "volt/voltage_domain.hpp"
