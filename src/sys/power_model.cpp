#include "sys/power_model.hpp"

#include <cmath>
#include <stdexcept>

namespace shmd::sys {

PowerModel::PowerModel(PowerModelConfig config) : config_(config) {
  if (config_.nominal_voltage_v <= 0.0 || config_.nominal_power_w <= 0.0) {
    throw std::invalid_argument("PowerModel: nominal voltage/power must be positive");
  }
  if (config_.dynamic_fraction < 0.0 || config_.leakage_fraction < 0.0) {
    throw std::invalid_argument("PowerModel: fractions must be non-negative");
  }
}

double PowerModel::power_w(double voltage_v) const {
  if (voltage_v <= 0.0) throw std::invalid_argument("PowerModel: voltage must be positive");
  const double r = voltage_v / config_.nominal_voltage_v;
  const double dyn = config_.dynamic_fraction * r * r;
  const double leak = config_.leakage_fraction * std::pow(r, config_.leakage_exponent);
  return config_.nominal_power_w * (dyn + leak) /
         (config_.dynamic_fraction + config_.leakage_fraction);
}

double PowerModel::savings_vs_nominal(double voltage_v) const {
  return 1.0 - power_w(voltage_v) / config_.nominal_power_w;
}

double PowerModel::savings_vs(double voltage_v, double competitor_power_w) const {
  if (competitor_power_w <= 0.0) {
    throw std::invalid_argument("PowerModel: competitor power must be positive");
  }
  return 1.0 - power_w(voltage_v) / competitor_power_w;
}

}  // namespace shmd::sys
