// EnergyMeter: the Intel-Power-Gadget stand-in (§VIII measures "average
// consumed power per inference" with Power Gadget).
//
// Combines the PowerModel (core watts at a voltage) with the LatencyModel
// (seconds per inference) plus any explicit per-query randomness energy
// (TRNG/PRNG baselines) into per-inference energy and average power, and
// accumulates totals across a measurement run.
#pragma once

#include <cstdint>

#include "nn/network.hpp"
#include "rng/random_source.hpp"
#include "sys/latency_model.hpp"
#include "sys/power_model.hpp"

namespace shmd::sys {

struct EnergySample {
  double time_us = 0.0;
  double energy_uj = 0.0;

  [[nodiscard]] double average_power_w() const noexcept {
    return time_us <= 0.0 ? 0.0 : energy_uj / time_us;
  }
};

class EnergyMeter {
 public:
  EnergyMeter(PowerModel power, LatencyModel latency)
      : power_(power), latency_(latency) {}

  /// One baseline/Stochastic-HMD inference at supply `voltage_v`.
  [[nodiscard]] EnergySample detection(const nn::Network& net, double voltage_v) const;

  /// One RHMD inference (always at nominal voltage — RHMD does not
  /// undervolt) with `n_base_detectors` models.
  [[nodiscard]] EnergySample rhmd_detection(const nn::Network& net,
                                            std::size_t n_base_detectors) const;

  /// One noise-injection-defense inference at nominal voltage: core energy
  /// for the stretched runtime plus per-query energy of the source.
  [[nodiscard]] EnergySample noise_detection(const nn::Network& net,
                                             const rng::RandomSource& source) const;

  /// Accumulate a sample into the running totals (a "measurement run").
  void record(const EnergySample& sample) noexcept;
  [[nodiscard]] std::uint64_t detections() const noexcept { return count_; }
  [[nodiscard]] double total_energy_uj() const noexcept { return total_energy_uj_; }
  [[nodiscard]] double total_time_us() const noexcept { return total_time_us_; }
  [[nodiscard]] double average_power_w() const noexcept;
  void reset() noexcept;

  [[nodiscard]] const PowerModel& power() const noexcept { return power_; }
  [[nodiscard]] const LatencyModel& latency() const noexcept { return latency_; }

 private:
  PowerModel power_;
  LatencyModel latency_;
  std::uint64_t count_ = 0;
  double total_energy_uj_ = 0.0;
  double total_time_us_ = 0.0;
};

}  // namespace shmd::sys
