// Per-inference latency model.
//
// §VIII's timing table: Stochastic-HMD 7 µs, RHMD-2F 7.7 µs, RHMD-2F2P
// 7.8 µs on the i7-5557U, with "scaling the voltage has no effect on the
// inference time" (frequency is untouched). The model decomposes a
// detection into:
//
//   MAC work        — one pipelined multiply-accumulate per weight;
//   fixed overhead  — dispatch + feature-vector staging;
//   RHMD extras     — random base-model selection + the L1 refill caused
//                     by switching between resident models ("random model
//                     selection also has impact on L1 cache eviction");
//   noise extras    — per-MAC randomness queries for the TRNG/PRNG
//                     defense baselines (§VIII's 62x / 4x overheads).
#pragma once

#include <cstddef>

#include "nn/network.hpp"
#include "rng/random_source.hpp"

namespace shmd::sys {

struct LatencyModelConfig {
  double frequency_ghz = 2.2;
  /// Effective cycles per MAC (SIMD-pipelined dense kernels).
  double cycles_per_mac = 0.85;
  double fixed_overhead_cycles = 350.0;
  /// RHMD model-selection cost (RNG draw + indirect dispatch).
  double model_select_cycles = 180.0;
  std::size_t l1_size_bytes = 32 * 1024;  // paper cites Tiger Lake's 32 KB L1
  /// Refill cost per byte of model state re-fetched after a switch.
  double refill_cycles_per_byte = 0.085;
};

class LatencyModel {
 public:
  explicit LatencyModel(LatencyModelConfig config = {});

  /// Baseline / Stochastic-HMD inference time. Voltage does not appear:
  /// undervolting leaves the clock untouched.
  [[nodiscard]] double inference_us(const nn::Network& net) const;

  /// RHMD inference: adds selection plus the expected L1 refill given
  /// `n_base_detectors` equally likely models of `model_bytes` each.
  [[nodiscard]] double rhmd_inference_us(const nn::Network& net, std::size_t n_base_detectors)
      const;

  /// Noise-injection defense: adds one randomness query per MAC with the
  /// source's per-query latency.
  [[nodiscard]] double noise_inference_us(const nn::Network& net,
                                          const rng::RandomSource& source) const;

  [[nodiscard]] double cycles_to_us(double cycles) const;
  [[nodiscard]] const LatencyModelConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] double base_cycles(const nn::Network& net) const;

  LatencyModelConfig config_;
};

}  // namespace shmd::sys
