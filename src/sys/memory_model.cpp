#include "sys/memory_model.hpp"

#include <stdexcept>

namespace shmd::sys {

double MemoryModel::storage_savings(std::size_t rhmd_base_detectors) {
  if (rhmd_base_detectors == 0) {
    throw std::invalid_argument("storage_savings: need >= 1 base detector");
  }
  return static_cast<double>(rhmd_base_detectors - 1) /
         static_cast<double>(rhmd_base_detectors);
}

std::size_t MemoryModel::rhmd_bytes(const nn::Network& net, std::size_t n) {
  if (n == 0) throw std::invalid_argument("rhmd_bytes: need >= 1 base detector");
  return net.memory_bytes() * n;
}

}  // namespace shmd::sys
