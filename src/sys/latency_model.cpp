#include "sys/latency_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace shmd::sys {

LatencyModel::LatencyModel(LatencyModelConfig config) : config_(config) {
  if (config_.frequency_ghz <= 0.0) {
    throw std::invalid_argument("LatencyModel: frequency must be positive");
  }
}

double LatencyModel::cycles_to_us(double cycles) const {
  return cycles / (config_.frequency_ghz * 1000.0);
}

double LatencyModel::base_cycles(const nn::Network& net) const {
  return static_cast<double>(net.mac_count()) * config_.cycles_per_mac +
         config_.fixed_overhead_cycles;
}

double LatencyModel::inference_us(const nn::Network& net) const {
  return cycles_to_us(base_cycles(net));
}

double LatencyModel::rhmd_inference_us(const nn::Network& net,
                                       std::size_t n_base_detectors) const {
  if (n_base_detectors == 0) {
    throw std::invalid_argument("rhmd_inference_us: need >= 1 base detector");
  }
  // Expected refill: the next window's model differs from the resident one
  // with probability (n-1)/n; the refetch touches min(model, L1) bytes.
  const double p_switch =
      static_cast<double>(n_base_detectors - 1) / static_cast<double>(n_base_detectors);
  const double refill_bytes = static_cast<double>(
      std::min(net.memory_bytes(), config_.l1_size_bytes));
  const double extra = config_.model_select_cycles +
                       p_switch * refill_bytes * config_.refill_cycles_per_byte;
  return cycles_to_us(base_cycles(net) + extra);
}

double LatencyModel::noise_inference_us(const nn::Network& net,
                                        const rng::RandomSource& source) const {
  const double query_cycles =
      static_cast<double>(net.mac_count()) * source.query_cost().latency_cycles;
  return cycles_to_us(base_cycles(net) + query_cycles);
}

}  // namespace shmd::sys
