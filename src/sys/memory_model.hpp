// Model-storage accounting (§VIII "Memory space").
//
// RHMDs must keep every base detector resident; Stochastic-HMD stores one
// model. Equation (1) of the paper:
//
//   storage savings = (#base detectors in RHMD - 1) / #base detectors
//
// plus the cache-pressure observation: "every HMD takes 71 KB of memory,
// while the L1 cache size in Intel's Tiger Lake CPU is 32 KB".
#pragma once

#include <cstddef>

#include "nn/network.hpp"

namespace shmd::sys {

class MemoryModel {
 public:
  explicit MemoryModel(std::size_t l1_size_bytes = 32 * 1024) : l1_size_bytes_(l1_size_bytes) {}

  /// Paper Eq. (1).
  [[nodiscard]] static double storage_savings(std::size_t rhmd_base_detectors);

  /// Bytes an RHMD with `n` base detectors of this model keeps resident.
  [[nodiscard]] static std::size_t rhmd_bytes(const nn::Network& net, std::size_t n);

  /// True when a single model no longer fits in L1 (cache-thrash regime).
  [[nodiscard]] bool exceeds_l1(const nn::Network& net) const noexcept {
    return net.memory_bytes() > l1_size_bytes_;
  }

  [[nodiscard]] std::size_t l1_size_bytes() const noexcept { return l1_size_bytes_; }

 private:
  std::size_t l1_size_bytes_;
};

}  // namespace shmd::sys
