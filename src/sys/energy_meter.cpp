#include "sys/energy_meter.hpp"

namespace shmd::sys {

EnergySample EnergyMeter::detection(const nn::Network& net, double voltage_v) const {
  EnergySample s;
  s.time_us = latency_.inference_us(net);
  s.energy_uj = power_.power_w(voltage_v) * s.time_us;  // W * us = uJ
  return s;
}

EnergySample EnergyMeter::rhmd_detection(const nn::Network& net,
                                         std::size_t n_base_detectors) const {
  EnergySample s;
  s.time_us = latency_.rhmd_inference_us(net, n_base_detectors);
  s.energy_uj = power_.power_w(power_.config().nominal_voltage_v) * s.time_us;
  return s;
}

EnergySample EnergyMeter::noise_detection(const nn::Network& net,
                                          const rng::RandomSource& source) const {
  EnergySample s;
  s.time_us = latency_.noise_inference_us(net, source);
  const double core_energy = power_.power_w(power_.config().nominal_voltage_v) * s.time_us;
  const double query_energy_uj = static_cast<double>(net.mac_count()) *
                                 source.query_cost().energy_nj * 1e-3;  // nJ -> uJ
  s.energy_uj = core_energy + query_energy_uj;
  return s;
}

void EnergyMeter::record(const EnergySample& sample) noexcept {
  ++count_;
  total_energy_uj_ += sample.energy_uj;
  total_time_us_ += sample.time_us;
}

double EnergyMeter::average_power_w() const noexcept {
  return total_time_us_ <= 0.0 ? 0.0 : total_energy_uj_ / total_time_us_;
}

void EnergyMeter::reset() noexcept {
  count_ = 0;
  total_energy_uj_ = 0.0;
  total_time_us_ = 0.0;
}

}  // namespace shmd::sys
