// Core power model — the substitute for Intel Power Gadget measurements.
//
// §VIII / Fig. 7 report *relative* power savings of an undervolted
// inference core against (a) the baseline HMD at nominal voltage and
// (b) RHMD (which burns extra power selecting and thrashing between base
// models). We model package power as dynamic + leakage components with
// the standard supply-voltage dependences:
//
//   P(V) = P_dyn * (V/Vn)^2  +  P_leak * (V/Vn)^3
//
// (dynamic CV^2f at fixed f; leakage modeled with a cubic effective
// dependence to capture the super-linear DIBL-driven drop — the paper's
// "super-linear dependence of both dynamic and leakage power on supply
// voltage"). Calibration targets: ≈15-20% savings at the er=0.1 operating
// point (paper: ~15%) and >75% savings vs RHMD at 40% voltage scaling
// (paper Fig. 7).
#pragma once

namespace shmd::sys {

struct PowerModelConfig {
  double nominal_voltage_v = 1.18;
  double frequency_ghz = 2.2;
  /// Core power while running detection at nominal voltage (i7-5557U-ish).
  double nominal_power_w = 15.0;
  double dynamic_fraction = 0.70;
  double leakage_fraction = 0.30;
  double leakage_exponent = 3.0;
};

class PowerModel {
 public:
  explicit PowerModel(PowerModelConfig config = {});

  /// Core power at supply `voltage_v` (frequency held constant, as the
  /// paper does: "we are only scaling the CPU voltage but not frequency").
  [[nodiscard]] double power_w(double voltage_v) const;

  /// Fractional saving of running at `voltage_v` vs nominal.
  [[nodiscard]] double savings_vs_nominal(double voltage_v) const;

  /// Fractional saving vs a competitor consuming `competitor_power_w`.
  [[nodiscard]] double savings_vs(double voltage_v, double competitor_power_w) const;

  [[nodiscard]] const PowerModelConfig& config() const noexcept { return config_; }

 private:
  PowerModelConfig config_;
};

}  // namespace shmd::sys
