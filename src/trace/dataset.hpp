// Dataset: the corpus with features extracted, split into the paper's
// three folds.
//
// §IV: "The dataset was divided evenly into 3-folds, which are victim
// training, attacker training, and testing... the malware types and the
// benign application types were distributed evenly and randomly across the
// folds to ensure that the datasets are not biased." We implement exactly
// that stratified 3-way split, plus rotation for 3-fold cross-validation.
//
// Feature storage: for each program we keep the per-window feature vectors
// for every (view, period) pair, not the raw instruction stream — streams
// are re-derivable from the program seed when the attack layer needs to
// mutate them.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "trace/features.hpp"
#include "trace/program_factory.hpp"
#include "trace/trace_collector.hpp"

namespace shmd::trace {

/// Identifies one feature configuration: which view at which detection
/// period (window size, in instructions).
struct FeatureConfig {
  FeatureView view = FeatureView::kInsnCategory;
  std::size_t period = 2048;

  friend auto operator<=>(const FeatureConfig&, const FeatureConfig&) = default;
};

/// Per-program extracted features: windows for each configured view/period.
class FeatureSet {
 public:
  void put(FeatureConfig config, std::vector<std::vector<double>> windows);
  [[nodiscard]] const std::vector<std::vector<double>>& windows(FeatureConfig config) const;
  [[nodiscard]] bool has(FeatureConfig config) const noexcept;

 private:
  std::map<FeatureConfig, std::vector<std::vector<double>>> windows_;
};

struct ProgramSample {
  Program program;
  FeatureSet features;

  [[nodiscard]] bool malware() const noexcept { return program.malware(); }
};

struct DatasetConfig {
  CorpusConfig corpus;
  std::size_t trace_length = 32768;
  /// Detection periods (window sizes); RHMD's "2P" constructions use both.
  std::vector<std::size_t> periods = {2048, 4096};
  std::uint64_t fold_seed = 0xF01D5ULL;
};

/// Indices (into Dataset::samples()) of the three roles.
struct FoldSplit {
  std::vector<std::size_t> victim_training;
  std::vector<std::size_t> attacker_training;
  std::vector<std::size_t> testing;
};

/// Extract a full FeatureSet (all views at each given period) from a raw
/// instruction stream. Used on attacker-modified traces, where the
/// precomputed per-sample features no longer apply.
[[nodiscard]] FeatureSet extract_feature_set(std::span<const Instruction> trace,
                                             std::span<const std::size_t> periods);

class Dataset {
 public:
  /// Build the corpus, trace every program, and extract features for all
  /// (view, period) combinations.
  [[nodiscard]] static Dataset build(const DatasetConfig& config);

  [[nodiscard]] const std::vector<ProgramSample>& samples() const noexcept { return samples_; }
  [[nodiscard]] const DatasetConfig& config() const noexcept { return config_; }

  /// Stratified 3-fold split. `rotation` in {0,1,2} rotates which fold
  /// plays which role, giving the paper's 3-fold cross-validation.
  [[nodiscard]] FoldSplit folds(int rotation = 0) const;

  /// Re-materialize a sample's instruction trace (deterministic).
  [[nodiscard]] std::vector<Instruction> trace_of(std::size_t sample_idx) const;

 private:
  DatasetConfig config_;
  std::vector<ProgramSample> samples_;
};

}  // namespace shmd::trace
