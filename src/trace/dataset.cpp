#include "trace/dataset.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "rng/xoshiro256ss.hpp"

namespace shmd::trace {

void FeatureSet::put(FeatureConfig config, std::vector<std::vector<double>> windows) {
  windows_[config] = std::move(windows);
}

const std::vector<std::vector<double>>& FeatureSet::windows(FeatureConfig config) const {
  const auto it = windows_.find(config);
  if (it == windows_.end()) {
    throw std::out_of_range("FeatureSet: no windows for requested view/period");
  }
  return it->second;
}

bool FeatureSet::has(FeatureConfig config) const noexcept {
  return windows_.contains(config);
}

FeatureSet extract_feature_set(std::span<const Instruction> trace,
                               std::span<const std::size_t> periods) {
  FeatureSet fs;
  for (std::size_t v = 0; v < kNumViews; ++v) {
    const auto view = static_cast<FeatureView>(v);
    for (std::size_t period : periods) {
      fs.put(FeatureConfig{view, period}, extract_windows(trace, view, period));
    }
  }
  return fs;
}

Dataset Dataset::build(const DatasetConfig& config) {
  if (config.periods.empty()) throw std::invalid_argument("Dataset: need >= 1 period");
  for (std::size_t period : config.periods) {
    if (period == 0 || period > config.trace_length) {
      throw std::invalid_argument("Dataset: period must be in [1, trace_length]");
    }
  }

  Dataset ds;
  ds.config_ = config;
  const std::vector<Program> corpus = ProgramFactory::make_corpus(config.corpus);
  const TraceCollector collector(config.trace_length);

  ds.samples_.reserve(corpus.size());
  for (const Program& program : corpus) {
    ProgramSample sample{program, FeatureSet{}};
    const std::vector<Instruction> trace = collector.collect(program);
    for (std::size_t v = 0; v < kNumViews; ++v) {
      const auto view = static_cast<FeatureView>(v);
      for (std::size_t period : config.periods) {
        sample.features.put(FeatureConfig{view, period}, extract_windows(trace, view, period));
      }
    }
    ds.samples_.push_back(std::move(sample));
  }
  return ds;
}

FoldSplit Dataset::folds(int rotation) const {
  if (rotation < 0 || rotation > 2) throw std::invalid_argument("folds: rotation must be 0..2");

  // Stratify: bucket sample indices by family, shuffle each bucket with a
  // seeded RNG, then deal round-robin into three folds. Every fold ends up
  // with (almost exactly) a third of each family.
  std::array<std::vector<std::size_t>, kNumFamilies> by_family;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    by_family[static_cast<std::size_t>(samples_[i].program.family())].push_back(i);
  }

  rng::Xoshiro256ss gen(config_.fold_seed);
  std::array<std::vector<std::size_t>, 3> folds;
  for (auto& bucket : by_family) {
    for (std::size_t i = bucket.size(); i > 1; --i) {
      std::swap(bucket[i - 1], bucket[gen.below(i)]);
    }
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      folds[i % 3].push_back(bucket[i]);
    }
  }

  FoldSplit split;
  split.victim_training = std::move(folds[static_cast<std::size_t>(rotation) % 3]);
  split.attacker_training = std::move(folds[(static_cast<std::size_t>(rotation) + 1) % 3]);
  split.testing = std::move(folds[(static_cast<std::size_t>(rotation) + 2) % 3]);
  return split;
}

std::vector<Instruction> Dataset::trace_of(std::size_t sample_idx) const {
  return samples_.at(sample_idx).program.generate(config_.trace_length);
}

}  // namespace shmd::trace
