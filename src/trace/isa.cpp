#include "trace/isa.hpp"

#include <stdexcept>

namespace shmd::trace {

std::string_view category_name(InsnCategory c) {
  switch (c) {
    case InsnCategory::kDataMovement: return "data_movement";
    case InsnCategory::kBinaryArithmetic: return "binary_arithmetic";
    case InsnCategory::kLogical: return "logical";
    case InsnCategory::kShiftRotate: return "shift_rotate";
    case InsnCategory::kBitByte: return "bit_byte";
    case InsnCategory::kControlTransfer: return "control_transfer";
    case InsnCategory::kString: return "string";
    case InsnCategory::kFlagControl: return "flag_control";
    case InsnCategory::kSegment: return "segment";
    case InsnCategory::kMisc: return "misc";
    case InsnCategory::kSystem: return "system";
    case InsnCategory::kX87Fp: return "x87_fp";
    case InsnCategory::kSimd: return "simd";
    case InsnCategory::kCrypto: return "crypto";
    case InsnCategory::kIo: return "io";
    case InsnCategory::kDecimalArithmetic: return "decimal_arithmetic";
  }
  throw std::invalid_argument("category_name: unknown category");
}

const CategoryBehavior& category_behavior(InsnCategory c) {
  // Read/write probabilities loosely follow x86 operand conventions:
  // data movement touches memory often, ALU ops read more than they write,
  // string ops stream sequentially, control transfers rarely touch memory.
  static const std::array<CategoryBehavior, kNumCategories> kTable = [] {
    std::array<CategoryBehavior, kNumCategories> t{};
    auto& mov = t[static_cast<std::size_t>(InsnCategory::kDataMovement)];
    mov.mem_read_prob = 0.45;
    mov.mem_write_prob = 0.35;
    mov.stride_probs = {0.35, 0.35, 0.2, 0.1};

    auto& arith = t[static_cast<std::size_t>(InsnCategory::kBinaryArithmetic)];
    arith.mem_read_prob = 0.25;
    arith.mem_write_prob = 0.08;
    arith.stride_probs = {0.3, 0.4, 0.2, 0.1};

    auto& logical = t[static_cast<std::size_t>(InsnCategory::kLogical)];
    logical.mem_read_prob = 0.2;
    logical.mem_write_prob = 0.06;
    logical.stride_probs = {0.3, 0.4, 0.2, 0.1};

    auto& shift = t[static_cast<std::size_t>(InsnCategory::kShiftRotate)];
    shift.mem_read_prob = 0.1;
    shift.mem_write_prob = 0.04;
    shift.stride_probs = {0.4, 0.3, 0.2, 0.1};

    auto& bit = t[static_cast<std::size_t>(InsnCategory::kBitByte)];
    bit.mem_read_prob = 0.3;
    bit.mem_write_prob = 0.05;
    bit.stride_probs = {0.25, 0.3, 0.25, 0.2};

    auto& ctl = t[static_cast<std::size_t>(InsnCategory::kControlTransfer)];
    ctl.mem_read_prob = 0.08;  // RET/indirect targets
    ctl.mem_write_prob = 0.05; // CALL pushing the return address
    ctl.stride_probs = {0.7, 0.2, 0.05, 0.05};
    ctl.control_mix = {0.72, 0.10, 0.10, 0.08};  // cond, jmp, call, ret

    auto& str = t[static_cast<std::size_t>(InsnCategory::kString)];
    str.mem_read_prob = 0.85;
    str.mem_write_prob = 0.45;
    str.stride_probs = {0.8, 0.15, 0.04, 0.01};

    auto& flag = t[static_cast<std::size_t>(InsnCategory::kFlagControl)];
    flag.mem_read_prob = 0.02;
    flag.mem_write_prob = 0.02;

    auto& seg = t[static_cast<std::size_t>(InsnCategory::kSegment)];
    seg.mem_read_prob = 0.3;
    seg.mem_write_prob = 0.02;
    seg.stride_probs = {0.2, 0.2, 0.3, 0.3};

    auto& misc = t[static_cast<std::size_t>(InsnCategory::kMisc)];
    misc.mem_read_prob = 0.05;
    misc.mem_write_prob = 0.02;
    misc.stride_probs = {0.4, 0.3, 0.2, 0.1};

    auto& sys = t[static_cast<std::size_t>(InsnCategory::kSystem)];
    sys.mem_read_prob = 0.35;
    sys.mem_write_prob = 0.25;
    sys.stride_probs = {0.1, 0.2, 0.3, 0.4};

    auto& x87 = t[static_cast<std::size_t>(InsnCategory::kX87Fp)];
    x87.mem_read_prob = 0.3;
    x87.mem_write_prob = 0.15;
    x87.stride_probs = {0.5, 0.3, 0.15, 0.05};

    auto& simd = t[static_cast<std::size_t>(InsnCategory::kSimd)];
    simd.mem_read_prob = 0.4;
    simd.mem_write_prob = 0.2;
    simd.stride_probs = {0.75, 0.15, 0.07, 0.03};

    auto& crypto = t[static_cast<std::size_t>(InsnCategory::kCrypto)];
    crypto.mem_read_prob = 0.5;
    crypto.mem_write_prob = 0.35;
    crypto.stride_probs = {0.85, 0.1, 0.04, 0.01};

    auto& io = t[static_cast<std::size_t>(InsnCategory::kIo)];
    io.mem_read_prob = 0.45;
    io.mem_write_prob = 0.45;
    io.stride_probs = {0.6, 0.2, 0.1, 0.1};

    auto& dec = t[static_cast<std::size_t>(InsnCategory::kDecimalArithmetic)];
    dec.mem_read_prob = 0.05;
    dec.mem_write_prob = 0.02;
    return t;
  }();
  return kTable[static_cast<std::size_t>(c)];
}

}  // namespace shmd::trace
