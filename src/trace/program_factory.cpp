#include "trace/program_factory.hpp"

#include "rng/splitmix64.hpp"

namespace shmd::trace {

Program ProgramFactory::make_program(std::uint32_t id, Family family, std::uint64_t sample_seed) {
  return Program(id, family, sample_seed);
}

std::vector<Program> ProgramFactory::make_corpus(const CorpusConfig& config) {
  std::vector<Program> corpus;
  corpus.reserve(config.n_malware + config.n_benign);
  rng::SplitMix64 seeds(config.master_seed);
  std::uint32_t id = 0;
  for (std::size_t i = 0; i < config.n_benign; ++i) {
    const auto family = static_cast<Family>(i % kNumBenignFamilies);
    corpus.emplace_back(id++, family, seeds());
  }
  for (std::size_t i = 0; i < config.n_malware; ++i) {
    const auto family = static_cast<Family>(kNumBenignFamilies + (i % kNumMalwareFamilies));
    corpus.emplace_back(id++, family, seeds());
  }
  return corpus;
}

}  // namespace shmd::trace
