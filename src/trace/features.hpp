// Feature extraction: instruction traces → per-window feature vectors.
//
// Three *feature views* are defined, following the RHMD construction the
// paper builds on (RHMDs randomize across detectors trained on different
// feature vectors; Stochastic-HMD itself uses the instruction-category
// view). Each view maps a window of `period` retired instructions to a
// fixed-length vector of values in [0, 1]:
//
//   kInsnCategory — relative frequency of each of the 16 instruction
//                   categories (the paper's primary feature set, §IV);
//   kMemory       — memory-reference mix: read/write densities, stride
//                   locality histogram, access-direction alternation;
//   kControlFlow  — architectural control-flow events: branch density,
//                   taken ratio, call/ret mix, basic-block length.
//
// Two *detection periods* (window sizes) are supported throughout; RHMD's
// "2P" constructions randomize across them.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "trace/instruction.hpp"

namespace shmd::trace {

enum class FeatureView : std::uint8_t {
  kInsnCategory = 0,
  kMemory = 1,
  kControlFlow = 2,
};

inline constexpr std::size_t kNumViews = 3;

[[nodiscard]] std::string_view view_name(FeatureView v);

/// Dimensionality of a view's feature vector.
[[nodiscard]] std::size_t view_dim(FeatureView v);

/// Extract one view's features over a single window.
[[nodiscard]] std::vector<double> extract_window(std::span<const Instruction> window,
                                                 FeatureView view);

/// Slice `trace` into consecutive non-overlapping windows of `period`
/// instructions (dropping a trailing partial window) and extract features
/// for each.
[[nodiscard]] std::vector<std::vector<double>> extract_windows(
    std::span<const Instruction> trace, FeatureView view, std::size_t period);

}  // namespace shmd::trace
