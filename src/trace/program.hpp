// A sampled synthetic program: the unit the corpus, the detectors, and the
// evasion attack all operate on.
//
// A Program is fully determined by (family, seed): constructing it samples
// concrete phase parameters from the family archetype, and generate()
// re-derives the *identical* instruction stream on every call. This is the
// determinism property the paper requires of its feature-collection
// framework (§IV: "we get the exact same trace in every run when we supply
// the same input") — and it lets the attack layer re-materialize a
// victim's trace on demand instead of storing raw streams for the whole
// corpus.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/families.hpp"
#include "trace/instruction.hpp"

namespace shmd::trace {

/// Concrete (post-jitter) phase parameters of one program.
struct Phase {
  std::array<double, kNumCategories> category_cdf{};
  double burstiness = 0.3;
  double branch_taken_prob = 0.6;
  std::uint32_t duration = 3000;
};

class Program {
 public:
  /// Sample a program of `family` deterministically from `seed`.
  Program(std::uint32_t id, Family family, std::uint64_t seed);

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] Family family() const noexcept { return family_; }
  [[nodiscard]] bool malware() const noexcept { return is_malware(family_); }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] const std::vector<Phase>& phases() const noexcept { return phases_; }

  /// Produce the first `n_instructions` of this program's execution.
  /// Deterministic: equal calls return equal streams.
  [[nodiscard]] std::vector<Instruction> generate(std::size_t n_instructions) const;

 private:
  std::uint32_t id_;
  Family family_;
  std::uint64_t seed_;
  std::vector<Phase> phases_;
};

}  // namespace shmd::trace
