#include "trace/hpc_collector.hpp"

#include <algorithm>

#include "rng/xoshiro256ss.hpp"
#include "trace/families.hpp"

namespace shmd::trace {

std::vector<double> HpcCollector::collect_frequencies(const Program& program,
                                                      std::size_t n_instructions,
                                                      std::uint64_t run_id) const {
  // Ground truth: the program's actual event counts (deterministic).
  const std::vector<Instruction> trace = program.generate(n_instructions);
  std::vector<double> counts(kNumCategories, 0.0);
  for (const Instruction& insn : trace) {
    counts[static_cast<std::size_t>(insn.category)] += 1.0;
  }

  // Measurement noise specific to this run.
  rng::Xoshiro256ss run_noise(run_id ^ (program.seed() * 0x9E3779B97F4A7C15ULL));

  // Counter multiplexing: with C physical counters and 16 classes, each
  // class is observed for ~C/16 of the window and extrapolated — adding
  // relative error that shrinks with more physical counters.
  const double duty =
      std::min(1.0, static_cast<double>(config_.physical_counters) /
                        static_cast<double>(kNumCategories));
  const double multiplex_sigma = config_.multiplex_error_sigma * (1.0 - duty);

  // Contamination: some runs pick up another context's profile. Foreign
  // activity is modeled as a generic busy mix (data movement + branches).
  const bool contaminated = run_noise.bernoulli(config_.contamination_prob);

  std::vector<double> measured(kNumCategories, 0.0);
  for (std::size_t c = 0; c < kNumCategories; ++c) {
    double value = counts[c];
    value *= 1.0 + config_.skid_overcount_mean * (1.0 + 0.5 * run_noise.gaussian());
    value *= 1.0 + multiplex_sigma * run_noise.gaussian();
    measured[c] = std::max(0.0, value);
  }
  if (contaminated) {
    const double foreign = config_.contamination_fraction * static_cast<double>(trace.size());
    measured[static_cast<std::size_t>(InsnCategory::kDataMovement)] += 0.55 * foreign;
    measured[static_cast<std::size_t>(InsnCategory::kControlTransfer)] += 0.25 * foreign;
    measured[static_cast<std::size_t>(InsnCategory::kBinaryArithmetic)] += 0.20 * foreign;
  }

  double total = 0.0;
  for (double v : measured) total += v;
  if (total > 0.0) {
    for (double& v : measured) v /= total;
  }
  return measured;
}

}  // namespace shmd::trace
