// ProgramFactory: builds the synthetic corpus.
//
// Mirrors the paper's dataset shape (§IV): 3000 malware / 600 benign, the
// malware spread over five types, with family types "distributed evenly
// and randomly" so folds stay unbiased. Sizes are parameters because the
// unit tests run on much smaller corpora.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/program.hpp"

namespace shmd::trace {

struct CorpusConfig {
  std::size_t n_malware = 3000;
  std::size_t n_benign = 600;
  std::uint64_t master_seed = 0xC0FFEEULL;
};

class ProgramFactory {
 public:
  /// Sample one program; `sample_seed` should be unique per program.
  [[nodiscard]] static Program make_program(std::uint32_t id, Family family,
                                            std::uint64_t sample_seed);

  /// Build the full corpus: malware/benign counts split evenly across the
  /// five families on each side, per-program seeds derived from the master
  /// seed. Deterministic.
  [[nodiscard]] static std::vector<Program> make_corpus(const CorpusConfig& config);
};

}  // namespace shmd::trace
