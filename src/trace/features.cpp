#include "trace/features.hpp"

#include <algorithm>
#include <stdexcept>

namespace shmd::trace {

std::string_view view_name(FeatureView v) {
  switch (v) {
    case FeatureView::kInsnCategory: return "insn_category";
    case FeatureView::kMemory: return "memory";
    case FeatureView::kControlFlow: return "control_flow";
  }
  throw std::invalid_argument("view_name: unknown view");
}

std::size_t view_dim(FeatureView v) {
  switch (v) {
    case FeatureView::kInsnCategory: return kNumCategories;
    case FeatureView::kMemory: return 8;
    case FeatureView::kControlFlow: return 8;
  }
  throw std::invalid_argument("view_dim: unknown view");
}

namespace {

std::vector<double> extract_insn_category(std::span<const Instruction> w) {
  std::vector<double> f(kNumCategories, 0.0);
  for (const Instruction& insn : w) f[static_cast<std::size_t>(insn.category)] += 1.0;
  const double n = static_cast<double>(w.size());
  for (double& x : f) x /= n;
  return f;
}

std::vector<double> extract_memory(std::span<const Instruction> w) {
  std::vector<double> f(8, 0.0);
  const double n = static_cast<double>(w.size());
  std::size_t reads = 0;
  std::size_t writes = 0;
  std::size_t accesses = 0;
  std::array<std::size_t, kNumStrideBuckets> strides{};
  std::size_t direction_switches = 0;
  bool have_prev_dir = false;
  bool prev_was_write = false;
  for (const Instruction& insn : w) {
    if (insn.mem_read) ++reads;
    if (insn.mem_write) ++writes;
    if (insn.mem_read || insn.mem_write) {
      ++accesses;
      ++strides[std::min<std::size_t>(insn.stride_bucket, kNumStrideBuckets - 1)];
      const bool is_write = insn.mem_write && !insn.mem_read;
      if (have_prev_dir && is_write != prev_was_write) ++direction_switches;
      prev_was_write = is_write;
      have_prev_dir = true;
    }
  }
  f[0] = static_cast<double>(reads) / n;
  f[1] = static_cast<double>(writes) / n;
  if (accesses > 0) {
    for (std::size_t b = 0; b < kNumStrideBuckets; ++b) {
      f[2 + b] = static_cast<double>(strides[b]) / static_cast<double>(accesses);
    }
  }
  f[6] = accesses > 1
             ? static_cast<double>(direction_switches) / static_cast<double>(accesses - 1)
             : 0.0;
  f[7] = static_cast<double>(accesses) / n;  // overall memory density
  return f;
}

std::vector<double> extract_control_flow(std::span<const Instruction> w) {
  std::vector<double> f(8, 0.0);
  const double n = static_cast<double>(w.size());
  std::size_t controls = 0;
  std::size_t cond = 0;
  std::size_t taken = 0;
  std::size_t calls = 0;
  std::size_t rets = 0;
  std::size_t jumps = 0;
  std::size_t taken_switches = 0;
  bool have_prev_taken = false;
  bool prev_taken = false;
  for (const Instruction& insn : w) {
    if (insn.control == ControlKind::kNone) continue;
    ++controls;
    switch (insn.control) {
      case ControlKind::kCondBranch:
        ++cond;
        if (insn.branch_taken) ++taken;
        if (have_prev_taken && insn.branch_taken != prev_taken) ++taken_switches;
        prev_taken = insn.branch_taken;
        have_prev_taken = true;
        break;
      case ControlKind::kJump: ++jumps; break;
      case ControlKind::kCall: ++calls; break;
      case ControlKind::kRet: ++rets; break;
      case ControlKind::kNone: break;
    }
  }
  f[0] = static_cast<double>(controls) / n;
  if (controls > 0) {
    f[1] = static_cast<double>(cond) / static_cast<double>(controls);
    f[3] = static_cast<double>(calls) / static_cast<double>(controls);
    f[4] = static_cast<double>(rets) / static_cast<double>(controls);
    f[5] = static_cast<double>(jumps) / static_cast<double>(controls);
  }
  f[2] = cond > 0 ? static_cast<double>(taken) / static_cast<double>(cond) : 0.0;
  // Mean basic-block length, squashed into [0, 1] (32+ instruction blocks
  // saturate — long straight-line code).
  const double bb_len = n / static_cast<double>(controls + 1);
  f[6] = std::min(bb_len / 32.0, 1.0);
  f[7] = cond > 1 ? static_cast<double>(taken_switches) / static_cast<double>(cond - 1) : 0.0;
  return f;
}

}  // namespace

std::vector<double> extract_window(std::span<const Instruction> window, FeatureView view) {
  if (window.empty()) throw std::invalid_argument("extract_window: empty window");
  switch (view) {
    case FeatureView::kInsnCategory: return extract_insn_category(window);
    case FeatureView::kMemory: return extract_memory(window);
    case FeatureView::kControlFlow: return extract_control_flow(window);
  }
  throw std::invalid_argument("extract_window: unknown view");
}

std::vector<std::vector<double>> extract_windows(std::span<const Instruction> trace,
                                                 FeatureView view, std::size_t period) {
  if (period == 0) throw std::invalid_argument("extract_windows: period must be > 0");
  std::vector<std::vector<double>> out;
  const std::size_t n_windows = trace.size() / period;
  out.reserve(n_windows);
  for (std::size_t i = 0; i < n_windows; ++i) {
    out.push_back(extract_window(trace.subspan(i * period, period), view));
  }
  return out;
}

}  // namespace shmd::trace
