#include "trace/families.hpp"

#include <initializer_list>
#include <stdexcept>
#include <utility>

namespace shmd::trace {

std::string_view family_name(Family f) {
  switch (f) {
    case Family::kBrowser: return "browser";
    case Family::kTextEditor: return "text_editor";
    case Family::kSystemUtility: return "system_utility";
    case Family::kCpuBenchmark: return "cpu_benchmark";
    case Family::kMediaPlayer: return "media_player";
    case Family::kBackdoor: return "backdoor";
    case Family::kRogue: return "rogue";
    case Family::kPasswordStealer: return "password_stealer";
    case Family::kTrojan: return "trojan";
    case Family::kWorm: return "worm";
  }
  throw std::invalid_argument("family_name: unknown family");
}

namespace {

using Cat = InsnCategory;

/// Build a weight vector: every category gets a small floor (so every
/// category can appear in any program) and the listed entries get their
/// explicit mass.
std::array<double, kNumCategories> weights(
    std::initializer_list<std::pair<Cat, double>> entries) {
  std::array<double, kNumCategories> w{};
  w.fill(0.008);
  for (const auto& [cat, mass] : entries) w[static_cast<std::size_t>(cat)] = mass;
  return w;
}

PhaseTemplate phase(std::string_view name, std::array<double, kNumCategories> w,
                    double burstiness, double taken, std::uint32_t duration) {
  PhaseTemplate p;
  p.name = name;
  p.weights = w;
  p.burstiness = burstiness;
  p.branch_taken_prob = taken;
  p.mean_duration = duration;
  return p;
}

FamilySpec make_spec(Family f) {
  FamilySpec spec;
  spec.family = f;
  switch (f) {
    case Family::kBrowser:
      spec.phases = {
          phase("parse",
                weights({{Cat::kDataMovement, 0.30}, {Cat::kBinaryArithmetic, 0.12},
                         {Cat::kLogical, 0.08}, {Cat::kBitByte, 0.05},
                         {Cat::kControlTransfer, 0.20}, {Cat::kString, 0.08},
                         {Cat::kMisc, 0.06}, {Cat::kSystem, 0.03}, {Cat::kSimd, 0.04}}),
                0.30, 0.62, 3500),
          phase("render",
                weights({{Cat::kDataMovement, 0.24}, {Cat::kBinaryArithmetic, 0.10},
                         {Cat::kControlTransfer, 0.12}, {Cat::kSimd, 0.30},
                         {Cat::kMisc, 0.05}, {Cat::kShiftRotate, 0.04},
                         {Cat::kLogical, 0.05}}),
                0.45, 0.70, 4000),
          phase("network",
                weights({{Cat::kDataMovement, 0.22}, {Cat::kControlTransfer, 0.15},
                         {Cat::kSystem, 0.09}, {Cat::kIo, 0.07}, {Cat::kCrypto, 0.12},
                         {Cat::kString, 0.08}, {Cat::kLogical, 0.06}}),
                0.35, 0.58, 2500),
      };
      break;
    case Family::kTextEditor:
      spec.phases = {
          phase("edit",
                weights({{Cat::kDataMovement, 0.34}, {Cat::kString, 0.15},
                         {Cat::kControlTransfer, 0.18}, {Cat::kBinaryArithmetic, 0.08},
                         {Cat::kBitByte, 0.05}, {Cat::kMisc, 0.08}, {Cat::kSystem, 0.03}}),
                0.35, 0.60, 4500),
          phase("idle",
                weights({{Cat::kDataMovement, 0.20}, {Cat::kControlTransfer, 0.26},
                         {Cat::kSystem, 0.07}, {Cat::kMisc, 0.20}, {Cat::kFlagControl, 0.06}}),
                0.25, 0.82, 2000),
          phase("save",
                weights({{Cat::kString, 0.20}, {Cat::kIo, 0.08}, {Cat::kSystem, 0.10},
                         {Cat::kDataMovement, 0.26}, {Cat::kControlTransfer, 0.14}}),
                0.55, 0.65, 1800),
      };
      break;
    case Family::kSystemUtility:
      // Deliberately syscall-heavy: the benign family that overlaps
      // malware behavior and drives realistic false positives.
      spec.phases = {
          phase("scan",
                weights({{Cat::kSystem, 0.15}, {Cat::kDataMovement, 0.25},
                         {Cat::kControlTransfer, 0.18}, {Cat::kString, 0.10},
                         {Cat::kIo, 0.05}, {Cat::kBitByte, 0.05}}),
                0.30, 0.58, 3000),
          phase("configure",
                weights({{Cat::kSystem, 0.11}, {Cat::kDataMovement, 0.30},
                         {Cat::kSegment, 0.05}, {Cat::kMisc, 0.08},
                         {Cat::kControlTransfer, 0.16}}),
                0.30, 0.60, 2200),
          phase("report",
                weights({{Cat::kString, 0.12}, {Cat::kDataMovement, 0.30},
                         {Cat::kControlTransfer, 0.15}, {Cat::kIo, 0.05},
                         {Cat::kBinaryArithmetic, 0.08}}),
                0.35, 0.62, 2000),
      };
      break;
    case Family::kCpuBenchmark:
      spec.phases = {
          phase("kernel",
                weights({{Cat::kBinaryArithmetic, 0.34}, {Cat::kSimd, 0.24},
                         {Cat::kX87Fp, 0.08}, {Cat::kDataMovement, 0.15},
                         {Cat::kControlTransfer, 0.10}, {Cat::kLogical, 0.05}}),
                0.55, 0.86, 6000),
          phase("memory",
                weights({{Cat::kDataMovement, 0.44}, {Cat::kString, 0.15},
                         {Cat::kBinaryArithmetic, 0.12}, {Cat::kControlTransfer, 0.10},
                         {Cat::kSimd, 0.08}}),
                0.60, 0.88, 5000),
      };
      break;
    case Family::kMediaPlayer:
      spec.phases = {
          phase("decode",
                weights({{Cat::kSimd, 0.36}, {Cat::kDataMovement, 0.22},
                         {Cat::kBinaryArithmetic, 0.12}, {Cat::kControlTransfer, 0.10},
                         {Cat::kShiftRotate, 0.06}, {Cat::kLogical, 0.05}}),
                0.50, 0.78, 5000),
          phase("output",
                weights({{Cat::kIo, 0.10}, {Cat::kDataMovement, 0.30}, {Cat::kSimd, 0.15},
                         {Cat::kSystem, 0.06}, {Cat::kControlTransfer, 0.12}}),
                0.40, 0.66, 2500),
      };
      break;
    case Family::kBackdoor:
      spec.phases = {
          phase("listen",
                weights({{Cat::kSystem, 0.15}, {Cat::kIo, 0.11}, {Cat::kControlTransfer, 0.20},
                         {Cat::kDataMovement, 0.22}, {Cat::kFlagControl, 0.04}}),
                0.30, 0.74, 2800),
          phase("command_control",
                weights({{Cat::kCrypto, 0.10}, {Cat::kSystem, 0.13}, {Cat::kIo, 0.09},
                         {Cat::kString, 0.08}, {Cat::kDataMovement, 0.20},
                         {Cat::kControlTransfer, 0.15}}),
                0.35, 0.60, 3200),
          phase("execute",
                weights({{Cat::kSystem, 0.16}, {Cat::kDataMovement, 0.25},
                         {Cat::kControlTransfer, 0.18}, {Cat::kSegment, 0.04},
                         {Cat::kMisc, 0.06}}),
                0.30, 0.58, 2400),
      };
      break;
    case Family::kRogue:
      spec.phases = {
          phase("scare_ui",
                weights({{Cat::kSimd, 0.18}, {Cat::kDataMovement, 0.25},
                         {Cat::kControlTransfer, 0.15}, {Cat::kSystem, 0.09},
                         {Cat::kString, 0.06}}),
                0.40, 0.68, 3000),
          phase("fake_scan",
                weights({{Cat::kString, 0.17}, {Cat::kSystem, 0.11}, {Cat::kDataMovement, 0.22},
                         {Cat::kBitByte, 0.08}, {Cat::kControlTransfer, 0.15}}),
                0.45, 0.62, 3500),
          phase("payment",
                weights({{Cat::kCrypto, 0.08}, {Cat::kIo, 0.08}, {Cat::kSystem, 0.11},
                         {Cat::kDataMovement, 0.25}, {Cat::kControlTransfer, 0.14}}),
                0.30, 0.60, 2000),
      };
      break;
    case Family::kPasswordStealer:
      spec.phases = {
          phase("harvest",
                weights({{Cat::kString, 0.24}, {Cat::kDataMovement, 0.25},
                         {Cat::kBitByte, 0.10}, {Cat::kControlTransfer, 0.12},
                         {Cat::kSystem, 0.08}}),
                0.55, 0.64, 3600),
          phase("decrypt",
                weights({{Cat::kCrypto, 0.14}, {Cat::kLogical, 0.10}, {Cat::kShiftRotate, 0.08},
                         {Cat::kBinaryArithmetic, 0.12}, {Cat::kDataMovement, 0.20}}),
                0.50, 0.72, 2600),
          phase("exfiltrate",
                weights({{Cat::kIo, 0.13}, {Cat::kSystem, 0.11}, {Cat::kCrypto, 0.08},
                         {Cat::kControlTransfer, 0.12}, {Cat::kDataMovement, 0.22}}),
                0.35, 0.60, 2200),
      };
      break;
    case Family::kTrojan:
      // Mimic phase is intentionally benign-looking: trojans are the hard
      // positives that keep baseline FNR non-zero.
      spec.phases = {
          phase("mimic",
                weights({{Cat::kDataMovement, 0.32}, {Cat::kBinaryArithmetic, 0.12},
                         {Cat::kControlTransfer, 0.18}, {Cat::kMisc, 0.08},
                         {Cat::kString, 0.05}, {Cat::kSystem, 0.04}}),
                0.35, 0.62, 5000),
          phase("payload",
                weights({{Cat::kSystem, 0.15}, {Cat::kString, 0.10}, {Cat::kIo, 0.07},
                         {Cat::kCrypto, 0.06}, {Cat::kDataMovement, 0.22},
                         {Cat::kControlTransfer, 0.14}}),
                0.35, 0.58, 2200),
          phase("persist",
                weights({{Cat::kSystem, 0.16}, {Cat::kSegment, 0.06}, {Cat::kDataMovement, 0.25},
                         {Cat::kBitByte, 0.06}, {Cat::kControlTransfer, 0.15}}),
                0.30, 0.60, 1800),
      };
      break;
    case Family::kWorm:
      spec.phases = {
          phase("scan_network",
                weights({{Cat::kIo, 0.15}, {Cat::kSystem, 0.13}, {Cat::kControlTransfer, 0.18},
                         {Cat::kDataMovement, 0.20}, {Cat::kBitByte, 0.05}}),
                0.30, 0.70, 3000),
          phase("replicate",
                weights({{Cat::kString, 0.19}, {Cat::kCrypto, 0.12}, {Cat::kDataMovement, 0.22},
                         {Cat::kSystem, 0.10}, {Cat::kControlTransfer, 0.12}}),
                0.55, 0.64, 3400),
          phase("infect",
                weights({{Cat::kSystem, 0.15}, {Cat::kSegment, 0.05}, {Cat::kDataMovement, 0.24},
                         {Cat::kString, 0.10}, {Cat::kControlTransfer, 0.15}}),
                0.35, 0.60, 2600),
      };
      break;
  }
  return spec;
}

}  // namespace

const FamilySpec& family_spec(Family f) {
  static const std::array<FamilySpec, kNumFamilies> kSpecs = [] {
    std::array<FamilySpec, kNumFamilies> specs{};
    for (std::size_t i = 0; i < kNumFamilies; ++i) {
      specs[i] = make_spec(static_cast<Family>(i));
    }
    return specs;
  }();
  const auto idx = static_cast<std::size_t>(f);
  if (idx >= kNumFamilies) throw std::invalid_argument("family_spec: unknown family");
  return kSpecs[idx];
}

}  // namespace shmd::trace
