#include "trace/program.hpp"

#include <algorithm>
#include <cmath>

#include "rng/xoshiro256ss.hpp"

namespace shmd::trace {

namespace {

std::array<double, kNumCategories> to_cdf(std::array<double, kNumCategories> weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  double acc = 0.0;
  std::array<double, kNumCategories> cdf{};
  for (std::size_t i = 0; i < kNumCategories; ++i) {
    acc += weights[i] / total;
    cdf[i] = acc;
  }
  cdf[kNumCategories - 1] = 1.0;
  return cdf;
}

InsnCategory sample_category(const std::array<double, kNumCategories>& cdf,
                             rng::Xoshiro256ss& gen) {
  const double u = gen.uniform01();
  for (std::size_t i = 0; i < kNumCategories; ++i) {
    if (u < cdf[i]) return static_cast<InsnCategory>(i);
  }
  return static_cast<InsnCategory>(kNumCategories - 1);
}

template <std::size_t N>
std::size_t sample_discrete(const std::array<double, N>& probs, rng::Xoshiro256ss& gen) {
  double total = 0.0;
  for (double p : probs) total += p;
  if (total <= 0.0) return 0;
  double u = gen.uniform01() * total;
  for (std::size_t i = 0; i < N; ++i) {
    u -= probs[i];
    if (u < 0.0) return i;
  }
  return N - 1;
}

}  // namespace

Program::Program(std::uint32_t id, Family family, std::uint64_t seed)
    : id_(id), family_(family), seed_(seed) {
  const FamilySpec& spec = family_spec(family);
  // Phase sampling uses its own RNG stream (seed ^ tag) so that changing
  // the trace length or generation code never perturbs program identity.
  rng::Xoshiro256ss gen(seed ^ 0x9E3779B97F4A7C15ULL);
  phases_.reserve(spec.phases.size());
  for (const PhaseTemplate& tpl : spec.phases) {
    Phase p;
    std::array<double, kNumCategories> w = tpl.weights;
    for (double& wi : w) {
      // Multiplicative log-normal jitter: preserves positivity and keeps
      // the family's qualitative mix while varying each sample.
      wi *= std::exp(spec.weight_jitter_sigma * gen.gaussian());
    }
    p.category_cdf = to_cdf(w);
    p.burstiness = std::clamp(tpl.burstiness + 0.1 * gen.gaussian(), 0.0, 0.9);
    p.branch_taken_prob = std::clamp(tpl.branch_taken_prob + 0.05 * gen.gaussian(), 0.05, 0.95);
    const double dur_scale = std::clamp(1.0 + spec.duration_jitter * gen.gaussian(), 0.3, 2.5);
    p.duration = std::max<std::uint32_t>(
        200, static_cast<std::uint32_t>(static_cast<double>(tpl.mean_duration) * dur_scale));
    phases_.push_back(p);
  }
}

std::vector<Instruction> Program::generate(std::size_t n_instructions) const {
  std::vector<Instruction> out;
  out.reserve(n_instructions);
  rng::Xoshiro256ss gen(seed_);
  std::size_t phase_idx = 0;
  std::uint32_t remaining_in_phase = phases_.empty() ? 0 : phases_[0].duration;
  auto prev_category = InsnCategory::kDataMovement;

  while (out.size() < n_instructions) {
    const Phase& phase = phases_[phase_idx];
    if (remaining_in_phase == 0) {
      phase_idx = (phase_idx + 1) % phases_.size();
      remaining_in_phase = phases_[phase_idx].duration;
      continue;
    }
    --remaining_in_phase;

    Instruction insn;
    insn.category = gen.bernoulli(phase.burstiness) ? prev_category
                                                    : sample_category(phase.category_cdf, gen);
    prev_category = insn.category;

    const CategoryBehavior& behavior = category_behavior(insn.category);
    insn.mem_read = gen.bernoulli(behavior.mem_read_prob);
    insn.mem_write = gen.bernoulli(behavior.mem_write_prob);
    if (insn.mem_read || insn.mem_write) {
      insn.stride_bucket =
          static_cast<std::uint8_t>(sample_discrete(behavior.stride_probs, gen));
    }
    if (insn.category == InsnCategory::kControlTransfer) {
      const std::size_t kind = sample_discrete(behavior.control_mix, gen);
      insn.control = static_cast<ControlKind>(kind + 1);  // skip kNone
      if (insn.control == ControlKind::kCondBranch) {
        insn.branch_taken = gen.bernoulli(phase.branch_taken_prob);
      }
    }
    out.push_back(insn);
  }
  return out;
}

}  // namespace shmd::trace
