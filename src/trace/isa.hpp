// Instruction taxonomy for the synthetic trace substrate.
//
// The paper's features are "based on the frequency of executed instruction
// categories; based on Intel's sub-grouping of instructions, e.g., binary
// arithmetic, control transfer, and system instructions sub-groups" (§IV,
// modeled after the RHMD study). We mirror that taxonomy: 16 categories
// drawn from the SDM's instruction groupings, plus a per-category
// *behavior profile* (memory/branch/stride tendencies) used both when
// synthesizing program traces and when the evasion attack injects padding
// instructions of a chosen category.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace shmd::trace {

enum class InsnCategory : std::uint8_t {
  kDataMovement = 0,     // MOV/PUSH/POP/XCHG
  kBinaryArithmetic,     // ADD/SUB/IMUL/DIV
  kLogical,              // AND/OR/XOR/NOT
  kShiftRotate,          // SHL/SHR/ROL/ROR
  kBitByte,              // BT/BTS/SETcc/TEST
  kControlTransfer,      // JMP/Jcc/CALL/RET
  kString,               // MOVS/CMPS/SCAS/LODS/STOS
  kFlagControl,          // STC/CLC/PUSHF
  kSegment,              // LDS/LES/segment moves
  kMisc,                 // LEA/NOP/CPUID/XLAT
  kSystem,               // SYSCALL/INT/LGDT/ring transitions
  kX87Fp,                // x87 floating point
  kSimd,                 // SSE/AVX packed ops
  kCrypto,               // AES-NI/SHA extensions
  kIo,                   // IN/OUT/INS/OUTS
  kDecimalArithmetic,    // AAA/DAA (rare legacy)
};

inline constexpr std::size_t kNumCategories = 16;

[[nodiscard]] std::string_view category_name(InsnCategory c);

/// Sub-kind of a control-transfer instruction (drives the control-flow
/// feature view).
enum class ControlKind : std::uint8_t {
  kNone = 0,
  kCondBranch,
  kJump,
  kCall,
  kRet,
};

/// Memory-stride bucket for an accessing instruction: 0 = sequential,
/// 1 = small stride (<64 B), 2 = page-local, 3 = scattered.
inline constexpr std::size_t kNumStrideBuckets = 4;

/// Behavioral tendencies of one instruction category, used to synthesize
/// plausible memory/branch side-information for generated and injected
/// instructions.
struct CategoryBehavior {
  double mem_read_prob = 0.0;
  double mem_write_prob = 0.0;
  /// Distribution over stride buckets, conditioned on a memory access.
  std::array<double, kNumStrideBuckets> stride_probs{1.0, 0.0, 0.0, 0.0};
  /// For kControlTransfer only: mix of control kinds
  /// {cond-branch, jump, call, ret}.
  std::array<double, 4> control_mix{0.0, 0.0, 0.0, 0.0};
};

/// Static behavior table (one entry per category).
[[nodiscard]] const CategoryBehavior& category_behavior(InsnCategory c);

}  // namespace shmd::trace
