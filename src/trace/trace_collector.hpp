// TraceCollector: the Pin-like dynamic instrumentation stage (§IV).
//
// The paper collects traces with Intel Pin on an isolated machine and
// *verifies determinism manually* (same input → same trace, across machines
// and VMs) because HPC-based collection is non-deterministic and unsafe for
// security use [6]. Our collector inherits determinism from the Program
// model and exposes an explicit verification hook so the property is
// checked mechanically in tests rather than by hand.
#pragma once

#include <cstddef>
#include <vector>

#include "trace/program.hpp"

namespace shmd::trace {

class TraceCollector {
 public:
  explicit TraceCollector(std::size_t trace_length) : trace_length_(trace_length) {}

  [[nodiscard]] std::size_t trace_length() const noexcept { return trace_length_; }

  /// Run `program` under instrumentation and return its instruction trace.
  [[nodiscard]] std::vector<Instruction> collect(const Program& program) const {
    return program.generate(trace_length_);
  }

  /// Collect `runs` times and confirm every run produced the identical
  /// stream — the paper's manual cross-machine check, made mechanical.
  [[nodiscard]] bool verify_determinism(const Program& program, int runs = 3) const;

 private:
  std::size_t trace_length_;
};

}  // namespace shmd::trace
