// One retired instruction as seen by the (Pin-like) trace collector.
//
// The collector only keeps what the feature views consume: the category,
// memory side-information, and control-flow side-information. 4 bytes per
// instruction keeps full corpora in memory during dataset construction.
#pragma once

#include <cstdint>

#include "trace/isa.hpp"

namespace shmd::trace {

struct Instruction {
  InsnCategory category = InsnCategory::kDataMovement;
  ControlKind control = ControlKind::kNone;
  std::uint8_t stride_bucket = 0;  ///< valid when mem_read or mem_write
  bool mem_read : 1 = false;
  bool mem_write : 1 = false;
  bool branch_taken : 1 = false;  ///< valid when control == kCondBranch
};

static_assert(sizeof(Instruction) <= 4, "Instruction must stay compact");

}  // namespace shmd::trace
