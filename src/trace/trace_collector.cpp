#include "trace/trace_collector.hpp"

namespace shmd::trace {

namespace {
bool equal_insn(const Instruction& a, const Instruction& b) {
  return a.category == b.category && a.control == b.control &&
         a.stride_bucket == b.stride_bucket && a.mem_read == b.mem_read &&
         a.mem_write == b.mem_write && a.branch_taken == b.branch_taken;
}
}  // namespace

bool TraceCollector::verify_determinism(const Program& program, int runs) const {
  const std::vector<Instruction> reference = collect(program);
  for (int r = 1; r < runs; ++r) {
    const std::vector<Instruction> trace = collect(program);
    if (trace.size() != reference.size()) return false;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      if (!equal_insn(trace[i], reference[i])) return false;
    }
  }
  return true;
}

}  // namespace shmd::trace
