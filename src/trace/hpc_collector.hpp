// Simulated hardware-performance-counter (HPC) feature collection — the
// road NOT taken, and why.
//
// §IV: "it has been shown that hardware features collected through
// hardware performance counters (HPCs) are not reliable to be used in
// security applications due to their non-determinism [Das et al., S&P'19].
// In this work, we do not use HPCs, and we make sure that our feature
// collection framework is deterministic."
//
// This collector models the documented HPC pathologies so the repository
// can *demonstrate* that design decision instead of asserting it:
//   * interrupt skid / overcounting   — events attributed past the sampling
//     boundary, a per-run positive bias;
//   * counter multiplexing            — more event classes than physical
//     counters, so classes are time-sliced and scaled, adding estimation
//     variance;
//   * context-switch contamination    — slices of another context's events
//     land in the monitored window.
// Each collection run draws fresh perturbations (run_id): identical input,
// different measurements — exactly what Pin-style instrumentation avoids.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/program.hpp"

namespace shmd::trace {

struct HpcConfig {
  /// Physical counters available; with fewer counters than the 16 event
  /// classes, multiplexing error applies to every class.
  unsigned physical_counters = 4;
  /// Relative std-dev of the multiplexing extrapolation per class.
  double multiplex_error_sigma = 0.05;
  /// Mean overcount per event from interrupt skid (fraction of true count).
  double skid_overcount_mean = 0.01;
  /// Probability a window is contaminated by another context...
  double contamination_prob = 0.08;
  /// ...and the fraction of foreign events mixed in when it is.
  double contamination_fraction = 0.10;
};

class HpcCollector {
 public:
  explicit HpcCollector(HpcConfig config = {}) : config_(config) {}

  /// Measure per-category event frequencies for `program` over
  /// `n_instructions`. `run_id` captures everything that differs between
  /// two otherwise identical runs (interrupt timing, scheduler decisions);
  /// two calls with different run_ids return different measurements for
  /// the SAME program — the non-determinism that disqualifies HPCs.
  [[nodiscard]] std::vector<double> collect_frequencies(const Program& program,
                                                        std::size_t n_instructions,
                                                        std::uint64_t run_id) const;

  [[nodiscard]] const HpcConfig& config() const noexcept { return config_; }

 private:
  HpcConfig config_;
};

}  // namespace shmd::trace
