// Program families for the synthetic corpus.
//
// The paper's dataset (§IV): 3000 malware from theZoo across five types —
// backdoors, rogues, password stealers, trojans, worms — and 600 benign
// programs ("browsers, text editing tools, system programs, and CPU
// performance benchmarks"). We model ten families (5 malware + 5 benign)
// as *phase-structured behavioral archetypes*: each family defines a loop
// of execution phases with characteristic instruction-category mixes, and
// each sampled program jitters those mixes (intra-family diversity).
//
// The class-separating structure mirrors the HMD literature: malware skews
// toward system/string/IO activity (syscall-heavy C2 loops, buffer
// scanning, propagation), while benign programs skew toward compute and
// data movement — with deliberate overlap (system utilities look
// syscall-heavy too) so baseline detectors show realistic FPR/FNR.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "trace/isa.hpp"

namespace shmd::trace {

enum class Family : std::uint8_t {
  // Benign.
  kBrowser = 0,
  kTextEditor,
  kSystemUtility,
  kCpuBenchmark,
  kMediaPlayer,
  // Malware (matches the paper's five theZoo types).
  kBackdoor,
  kRogue,
  kPasswordStealer,
  kTrojan,
  kWorm,
};

inline constexpr std::size_t kNumFamilies = 10;
inline constexpr std::size_t kNumBenignFamilies = 5;
inline constexpr std::size_t kNumMalwareFamilies = 5;

[[nodiscard]] constexpr bool is_malware(Family f) noexcept {
  return static_cast<std::uint8_t>(f) >= kNumBenignFamilies;
}

[[nodiscard]] std::string_view family_name(Family f);

/// One execution phase archetype: a category mix plus dynamic-behavior
/// parameters. Sampled programs perturb `weights` multiplicatively.
struct PhaseTemplate {
  std::string_view name;
  std::array<double, kNumCategories> weights{};  ///< unnormalized category mix
  double burstiness = 0.3;       ///< P(repeat previous category)
  double branch_taken_prob = 0.6;
  std::uint32_t mean_duration = 3000;  ///< instructions per phase visit
};

/// Family archetype: the phase loop plus intra-family jitter magnitude.
struct FamilySpec {
  Family family;
  std::vector<PhaseTemplate> phases;
  /// Log-normal sigma applied per-category when sampling a program:
  /// higher → more intra-family diversity → harder classification.
  double weight_jitter_sigma = 0.75;
  /// Jitter on phase durations (fractional).
  double duration_jitter = 0.4;
};

/// Archetype lookup (static table built once).
[[nodiscard]] const FamilySpec& family_spec(Family f);

}  // namespace shmd::trace
